//! Device buffers — the `cl_mem` analogue.
//!
//! A [`Buffer`] is a flat array of 32-bit words. The paper restricts Ocelot
//! to four-byte integer and floating point data (§3.1), so a single word
//! type with typed accessors (`i32`, `f32`, `u32`/OID) covers everything the
//! operators need. All words are stored as [`AtomicU32`] cells: regular
//! reads and writes use relaxed loads/stores (different work-items always
//! touch disjoint indices), and the hashing/aggregation kernels additionally
//! perform CAS and fetch-add on the very same cells, mirroring OpenCL global
//! atomics.
//!
//! Buffers are charged against the owning device's [`MemAccountant`] and
//! release their bytes when dropped, which is what allows the Memory Manager
//! in `ocelot-core` to free device memory by evicting cache entries.

use crate::device::MemAccountant;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

struct BufferInner {
    id: u64,
    label: String,
    data: Box<[AtomicU32]>,
    accountant: Option<Arc<MemAccountant>>,
}

impl Drop for BufferInner {
    fn drop(&mut self) {
        if let Some(acc) = &self.accountant {
            acc.release(self.data.len() * 4);
        }
    }
}

/// A shared handle to a device buffer of 32-bit words.
///
/// Cloning the handle is cheap; the underlying storage is dropped (and the
/// device memory released) when the last handle goes away.
#[derive(Clone)]
pub struct Buffer {
    inner: Arc<BufferInner>,
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.inner.id)
            .field("label", &self.inner.label)
            .field("len", &self.inner.data.len())
            .finish()
    }
}

impl Buffer {
    pub(crate) fn new(
        id: u64,
        words: usize,
        label: &str,
        accountant: Option<Arc<MemAccountant>>,
    ) -> Buffer {
        let data: Box<[AtomicU32]> = (0..words).map(|_| AtomicU32::new(0)).collect();
        Buffer { inner: Arc::new(BufferInner { id, label: label.to_string(), data, accountant }) }
    }

    /// Creates a buffer that is not charged against any device (useful for
    /// tests and host-side scratch space).
    pub fn host_scratch(words: usize, label: &str) -> Buffer {
        Buffer::new(0, words, label, None)
    }

    /// Unique id of this buffer on its device.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Human-readable label given at allocation time.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Number of 32-bit words in the buffer.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// Whether the buffer holds zero words.
    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.len() * 4
    }

    /// Number of live handles to this buffer (used by the Memory Manager's
    /// reference-counting eviction guard, paper §3.3).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Direct access to the atomic cell at `idx` (for CAS/fetch-add kernels).
    #[inline]
    pub fn cell(&self, idx: usize) -> &AtomicU32 {
        &self.inner.data[idx]
    }

    /// Raw word load.
    #[inline]
    pub fn get_u32(&self, idx: usize) -> u32 {
        self.inner.data[idx].load(Ordering::Relaxed)
    }

    /// Raw word store.
    #[inline]
    pub fn set_u32(&self, idx: usize, value: u32) {
        self.inner.data[idx].store(value, Ordering::Relaxed);
    }

    /// Signed-integer load.
    #[inline]
    pub fn get_i32(&self, idx: usize) -> i32 {
        self.get_u32(idx) as i32
    }

    /// Signed-integer store.
    #[inline]
    pub fn set_i32(&self, idx: usize, value: i32) {
        self.set_u32(idx, value as u32);
    }

    /// Floating-point load (bit reinterpretation of the stored word).
    #[inline]
    pub fn get_f32(&self, idx: usize) -> f32 {
        f32::from_bits(self.get_u32(idx))
    }

    /// Floating-point store.
    #[inline]
    pub fn set_f32(&self, idx: usize, value: f32) {
        self.set_u32(idx, value.to_bits());
    }

    /// Fills every word of the buffer with `value`.
    pub fn fill_u32(&self, value: u32) {
        for cell in self.inner.data.iter() {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Copies `values` into the first `values.len()` words of the buffer.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than `values`.
    pub fn copy_from_i32(&self, values: &[i32]) {
        assert!(values.len() <= self.len(), "copy_from_i32: buffer too small");
        for (idx, v) in values.iter().enumerate() {
            self.set_i32(idx, *v);
        }
    }

    /// Copies `values` into the buffer as floats.
    pub fn copy_from_f32(&self, values: &[f32]) {
        assert!(values.len() <= self.len(), "copy_from_f32: buffer too small");
        for (idx, v) in values.iter().enumerate() {
            self.set_f32(idx, *v);
        }
    }

    /// Copies `values` into the buffer as raw words.
    pub fn copy_from_u32(&self, values: &[u32]) {
        assert!(values.len() <= self.len(), "copy_from_u32: buffer too small");
        for (idx, v) in values.iter().enumerate() {
            self.set_u32(idx, *v);
        }
    }

    /// Reads the whole buffer into a `Vec<i32>`.
    pub fn to_vec_i32(&self) -> Vec<i32> {
        (0..self.len()).map(|i| self.get_i32(i)).collect()
    }

    /// Reads the whole buffer into a `Vec<f32>`.
    pub fn to_vec_f32(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get_f32(i)).collect()
    }

    /// Reads the whole buffer into a `Vec<u32>`.
    pub fn to_vec_u32(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.get_u32(i)).collect()
    }

    /// Reads a prefix of the buffer into a `Vec<i32>`.
    pub fn prefix_i32(&self, count: usize) -> Vec<i32> {
        (0..count.min(self.len())).map(|i| self.get_i32(i)).collect()
    }

    /// Reads a prefix of the buffer into a `Vec<f32>`.
    pub fn prefix_f32(&self, count: usize) -> Vec<f32> {
        (0..count.min(self.len())).map(|i| self.get_f32(i)).collect()
    }

    /// Reads a prefix of the buffer into a `Vec<u32>`.
    pub fn prefix_u32(&self, count: usize) -> Vec<u32> {
        (0..count.min(self.len())).map(|i| self.get_u32(i)).collect()
    }

    /// Snapshots the buffer contents into a host-side copy that is *not*
    /// charged against any device. The Memory Manager uses this to offload
    /// intermediate results to the host when device memory runs out
    /// (paper §3.3).
    pub fn offload_to_host(&self) -> HostCopy {
        HostCopy { label: self.inner.label.clone(), words: self.to_vec_u32() }
    }
}

/// A host-resident snapshot of a buffer's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostCopy {
    label: String,
    words: Vec<u32>,
}

impl HostCopy {
    /// Creates a host copy from raw words.
    pub fn from_words(label: &str, words: Vec<u32>) -> HostCopy {
        HostCopy { label: label.to_string(), words }
    }

    /// The label the originating buffer carried.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of 32-bit words held.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the copy holds zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// The raw words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Restores the snapshot into an already-allocated device buffer.
    ///
    /// # Panics
    /// Panics if the target buffer is smaller than the snapshot.
    pub fn restore_into(&self, target: &Buffer) {
        assert!(target.len() >= self.words.len(), "restore_into: target buffer too small");
        target.copy_from_u32(&self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_round_trip() {
        let buf = Buffer::host_scratch(4, "t");
        buf.set_i32(0, -42);
        buf.set_f32(1, 3.5);
        buf.set_u32(2, u32::MAX);
        assert_eq!(buf.get_i32(0), -42);
        assert_eq!(buf.get_f32(1), 3.5);
        assert_eq!(buf.get_u32(2), u32::MAX);
        assert_eq!(buf.get_u32(3), 0, "buffers start zeroed");
    }

    #[test]
    fn fill_and_vectors() {
        let buf = Buffer::host_scratch(3, "t");
        buf.fill_u32(7);
        assert_eq!(buf.to_vec_u32(), vec![7, 7, 7]);
        buf.copy_from_i32(&[1, -2, 3]);
        assert_eq!(buf.to_vec_i32(), vec![1, -2, 3]);
        assert_eq!(buf.prefix_i32(2), vec![1, -2]);
        assert_eq!(buf.prefix_i32(100), vec![1, -2, 3], "prefix clamps to len");
    }

    #[test]
    fn bytes_and_len() {
        let buf = Buffer::host_scratch(10, "t");
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.bytes(), 40);
        assert!(!buf.is_empty());
        assert!(Buffer::host_scratch(0, "e").is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn copy_too_large_panics() {
        let buf = Buffer::host_scratch(1, "t");
        buf.copy_from_i32(&[1, 2]);
    }

    #[test]
    fn offload_and_restore() {
        let buf = Buffer::host_scratch(4, "data");
        buf.copy_from_i32(&[10, 20, 30, 40]);
        let copy = buf.offload_to_host();
        assert_eq!(copy.len(), 4);
        assert_eq!(copy.bytes(), 16);
        assert_eq!(copy.label(), "data");

        let restored = Buffer::host_scratch(4, "data");
        copy.restore_into(&restored);
        assert_eq!(restored.to_vec_i32(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn handle_count_tracks_clones() {
        let buf = Buffer::host_scratch(1, "t");
        assert_eq!(buf.handle_count(), 1);
        let clone = buf.clone();
        assert_eq!(buf.handle_count(), 2);
        drop(clone);
        assert_eq!(buf.handle_count(), 1);
    }
}
