//! Abstract compute devices and their drivers.
//!
//! A [`Device`] bundles three things:
//!
//! * a [`DeviceInfo`] describing the hardware the way an OpenCL platform
//!   query would (core count, compute units per core, local/global memory,
//!   unified vs. discrete memory, preferred access pattern),
//! * a driver that knows how to execute kernels on that hardware, and
//! * a [`MemAccountant`] that tracks how much of the device's global memory
//!   is in use (discrete GPUs have a hard capacity; running out triggers the
//!   Memory Manager's eviction logic in `ocelot-core`).
//!
//! The operators in `ocelot-core` never look at [`DeviceKind`]; the only
//! device-dependent decisions — launch configuration and preferred memory
//! access pattern — are made *here*, in the "driver", exactly as the paper
//! prescribes (§4.2).

use crate::buffer::Buffer;
use crate::error::{KernelError, Result};
use crate::fault::{FaultKind, FaultPlan, FaultSite, FaultStats};
use crate::gpu_sim::{GpuConfig, GpuCostModel};
use crate::kernel::{run_group_range, Kernel};
use crate::queue::Queue;
use crate::scheduling::{self, LaunchConfig};
use crate::thread_pool::ThreadPool;
use ocelot_trace::{TraceEventKind, TraceHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The class of a compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A single CPU core; kernels are invoked sequentially within a loop.
    CpuSequential,
    /// A multi-core CPU; one work-group is scheduled per core.
    CpuMulticore,
    /// A discrete GPU with its own global memory, reached over a PCIe-like
    /// link. In this reproduction the GPU is *emulated*: kernels execute
    /// bit-faithfully on host threads while execution time is accounted by a
    /// calibrated cost model (see [`crate::gpu_sim`]).
    DiscreteGpu,
}

/// Preferred memory-access pattern of the threads within a work-group
/// (paper §4.2, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Each work-item walks a contiguous chunk of the input — optimal for
    /// CPU prefetching and caching.
    Contiguous,
    /// Neighbouring work-items access neighbouring locations (stride =
    /// total number of work-items) — the pattern GPUs coalesce into a single
    /// memory transaction.
    Strided,
}

/// Static description of a device, the analogue of `clGetDeviceInfo`.
#[derive(Debug, Clone)]
pub struct DeviceInfo {
    /// Device class.
    pub kind: DeviceKind,
    /// Human-readable device name.
    pub name: String,
    /// Number of cores (`nc` in the paper's scheduling heuristic).
    pub compute_cores: usize,
    /// Number of compute units per core (`na`).
    pub units_per_core: usize,
    /// Bytes of fast local (work-group shared) memory per core.
    pub local_mem_bytes: usize,
    /// Bytes of global device memory available for buffers.
    pub global_mem_bytes: usize,
    /// Whether the device shares the host's address space (zero-copy).
    pub unified_memory: bool,
    /// The access pattern the driver injects into kernels at build time.
    pub preferred_access: AccessPattern,
}

impl DeviceInfo {
    /// Total number of compute units on the device.
    pub fn total_compute_units(&self) -> usize {
        self.compute_cores * self.units_per_core
    }
}

/// Tracks allocated bytes against a device's global-memory capacity.
///
/// Buffers release their bytes when dropped, so the accountant's `used`
/// figure always reflects live allocations.
#[derive(Debug)]
pub struct MemAccountant {
    capacity: usize,
    used: AtomicUsize,
}

impl MemAccountant {
    /// Creates an accountant with the given capacity in bytes.
    pub fn new(capacity: usize) -> Self {
        MemAccountant { capacity, used: AtomicUsize::new(0) }
    }

    /// Attempts to reserve `bytes`; fails with
    /// [`KernelError::OutOfDeviceMemory`] if the capacity would be exceeded.
    pub fn try_alloc(&self, bytes: usize) -> Result<()> {
        self.try_alloc_capped(bytes, usize::MAX)
    }

    /// [`MemAccountant::try_alloc`] against `min(capacity, cap)` — the
    /// reservation primitive behind soft device-memory budgets. The check
    /// and the reservation are one atomic step (CAS), so concurrent
    /// sessions sharing the accountant cannot both squeeze past the cap.
    pub fn try_alloc_capped(&self, bytes: usize, cap: usize) -> Result<()> {
        let limit = self.capacity.min(cap);
        let mut current = self.used.load(Ordering::Relaxed);
        loop {
            let over = KernelError::OutOfDeviceMemory {
                requested: bytes,
                available: limit.saturating_sub(current),
            };
            let new = match current.checked_add(bytes) {
                Some(new) if new <= limit => new,
                _ => return Err(over),
            };
            match self.used.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Returns previously reserved bytes to the pool.
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes.min(self.used.load(Ordering::Relaxed)), Ordering::AcqRel);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity.saturating_sub(self.used())
    }
}

/// Timing report of a single kernel launch, produced by a driver.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DriverReport {
    /// Wall-clock nanoseconds spent executing on the host.
    pub host_ns: u64,
    /// Modeled nanoseconds on the target device (equals `host_ns` for real
    /// CPU devices, comes from the cost model for the simulated GPU).
    pub modeled_ns: u64,
}

/// A device driver: knows how to run kernels and how expensive host/device
/// transfers are.
pub(crate) trait Driver: Send + Sync {
    fn execute(&self, kernel: &Arc<dyn Kernel>, launch: &LaunchConfig) -> DriverReport;
    /// Modeled cost of moving `bytes` between host and device memory.
    fn transfer_ns(&self, bytes: usize) -> u64;
}

/// Driver that invokes the kernel sequentially within a loop on the calling
/// thread — the single-core CPU mapping described in §2.3.
struct SequentialDriver;

impl Driver for SequentialDriver {
    fn execute(&self, kernel: &Arc<dyn Kernel>, launch: &LaunchConfig) -> DriverReport {
        let start = Instant::now();
        run_group_range(kernel.as_ref(), launch, 0..launch.num_groups);
        let host_ns = start.elapsed().as_nanos() as u64;
        DriverReport { host_ns, modeled_ns: host_ns }
    }

    fn transfer_ns(&self, _bytes: usize) -> u64 {
        0
    }
}

/// Driver that maps work-groups onto the threads of a worker pool — the
/// multi-core CPU mapping (one work-group per core).
struct MulticoreDriver {
    pool: Arc<ThreadPool>,
}

impl MulticoreDriver {
    fn run_parallel(&self, kernel: &Arc<dyn Kernel>, launch: &LaunchConfig) {
        let groups = launch.num_groups;
        if groups == 0 {
            return;
        }
        // The scoped slice path borrows the kernel and launch directly: no
        // per-launch boxing, no Arc clone per worker.
        let kernel = kernel.as_ref();
        self.pool.for_each_slice(groups, |start, end| {
            run_group_range(kernel, launch, start..end);
        });
    }
}

impl Driver for MulticoreDriver {
    fn execute(&self, kernel: &Arc<dyn Kernel>, launch: &LaunchConfig) -> DriverReport {
        let start = Instant::now();
        self.run_parallel(kernel, launch);
        let host_ns = start.elapsed().as_nanos() as u64;
        DriverReport { host_ns, modeled_ns: host_ns }
    }

    fn transfer_ns(&self, _bytes: usize) -> u64 {
        0
    }
}

/// Driver for the simulated discrete GPU: executes kernels on the host pool
/// for correctness, but reports modeled time from the [`GpuCostModel`].
struct GpuSimDriver {
    inner: MulticoreDriver,
    model: GpuCostModel,
}

impl Driver for GpuSimDriver {
    fn execute(&self, kernel: &Arc<dyn Kernel>, launch: &LaunchConfig) -> DriverReport {
        let start = Instant::now();
        self.inner.run_parallel(kernel, launch);
        let host_ns = start.elapsed().as_nanos() as u64;
        let cost = kernel.cost(launch);
        let modeled_ns = self.model.kernel_ns(&cost, launch);
        DriverReport { host_ns, modeled_ns }
    }

    fn transfer_ns(&self, bytes: usize) -> u64 {
        self.model.transfer_ns(bytes)
    }
}

/// Fault-injection state shared by every clone of a device: the installed
/// plan (if any) and the sticky "lost" flag (see [`crate::fault`]).
#[derive(Default)]
struct FaultCell {
    plan: Mutex<Option<FaultPlan>>,
    lost: AtomicBool,
}

/// A handle to a compute device. Cloning is cheap (all state is shared).
#[derive(Clone)]
pub struct Device {
    info: Arc<DeviceInfo>,
    driver: Arc<dyn Driver>,
    mem: Arc<MemAccountant>,
    next_buffer_id: Arc<AtomicU64>,
    faults: Arc<FaultCell>,
    trace: Arc<TraceHandle>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("kind", &self.info.kind)
            .field("name", &self.info.name)
            .field("cores", &self.info.compute_cores)
            .field("units_per_core", &self.info.units_per_core)
            .finish()
    }
}

impl Device {
    /// Single-core CPU device: kernels are invoked sequentially.
    pub fn cpu_sequential() -> Device {
        let info = DeviceInfo {
            kind: DeviceKind::CpuSequential,
            name: "Ocelot sequential CPU driver".to_string(),
            compute_cores: 1,
            units_per_core: 1,
            local_mem_bytes: 256 * 1024,
            global_mem_bytes: usize::MAX,
            unified_memory: true,
            preferred_access: AccessPattern::Contiguous,
        };
        Device::from_parts(info, Arc::new(SequentialDriver))
    }

    /// Multi-core CPU device sized to the machine's available parallelism.
    pub fn cpu_multicore() -> Device {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Device::cpu_multicore_with(threads)
    }

    /// Multi-core CPU device with an explicit number of worker threads.
    pub fn cpu_multicore_with(threads: usize) -> Device {
        let threads = threads.max(1);
        let info = DeviceInfo {
            kind: DeviceKind::CpuMulticore,
            name: format!("Ocelot multi-core CPU driver ({threads} threads)"),
            compute_cores: threads,
            units_per_core: 1,
            local_mem_bytes: 256 * 1024,
            global_mem_bytes: usize::MAX,
            unified_memory: true,
            preferred_access: AccessPattern::Contiguous,
        };
        let pool = Arc::new(ThreadPool::new(threads));
        Device::from_parts(info, Arc::new(MulticoreDriver { pool }))
    }

    /// Simulated discrete GPU device (see [`GpuConfig`] for the knobs).
    pub fn simulated_gpu(config: GpuConfig) -> Device {
        let info = DeviceInfo {
            kind: DeviceKind::DiscreteGpu,
            name: format!(
                "Ocelot simulated GPU ({} MPs x {} units, {} MiB)",
                config.multiprocessors,
                config.units_per_multiprocessor,
                config.global_mem_bytes / (1024 * 1024)
            ),
            compute_cores: config.multiprocessors,
            units_per_core: config.units_per_multiprocessor,
            local_mem_bytes: config.local_mem_bytes,
            global_mem_bytes: config.global_mem_bytes,
            unified_memory: false,
            preferred_access: AccessPattern::Strided,
        };
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let pool = Arc::new(ThreadPool::new(threads));
        let model = GpuCostModel::new(config);
        Device::from_parts(info, Arc::new(GpuSimDriver { inner: MulticoreDriver { pool }, model }))
    }

    fn from_parts(info: DeviceInfo, driver: Arc<dyn Driver>) -> Device {
        let mem = Arc::new(MemAccountant::new(info.global_mem_bytes));
        Device {
            info: Arc::new(info),
            driver,
            mem,
            next_buffer_id: Arc::new(AtomicU64::new(1)),
            faults: Arc::new(FaultCell::default()),
            trace: Arc::new(TraceHandle::new()),
        }
    }

    /// The device's trace attachment point, shared by every clone: attach a
    /// [`ocelot_trace::TraceSink`] and successful allocations emit
    /// [`TraceEventKind::Alloc`] events tagged with the op site the fault
    /// layer also uses (`"allocation"`).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Installs a [`FaultPlan`] on the device (replacing any previous one).
    /// Every clone of this device — and every queue created from any clone
    /// — consults the plan at kernel launches, transfers and allocations.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *self.faults.plan.lock() = Some(plan);
    }

    /// Removes the installed fault plan. Does **not** revive a lost device
    /// — loss is sticky for the lifetime of the device object.
    pub fn clear_fault_plan(&self) {
        *self.faults.plan.lock() = None;
    }

    /// Counters of the installed fault plan, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.plan.lock().as_ref().map(|plan| plan.stats())
    }

    /// Whether the device has (simulated) dropped off the bus. Once lost,
    /// every launch, transfer, allocation and non-empty flush fails with
    /// [`KernelError::DeviceLost`].
    pub fn is_lost(&self) -> bool {
        self.faults.lost.load(Ordering::Relaxed)
    }

    /// Consults the fault plan before an operation at `site`. Errors when
    /// the device is lost or the plan fires; advances the plan's counters
    /// otherwise. The single fault decision point the queue and the
    /// allocator route through.
    pub(crate) fn fault_preflight(&self, site: FaultSite) -> Result<()> {
        if self.is_lost() {
            return Err(KernelError::DeviceLost);
        }
        let fired = self.faults.plan.lock().as_ref().and_then(|plan| plan.fire(site));
        match fired {
            None => Ok(()),
            Some((FaultKind::DeviceLost, _)) => {
                self.faults.lost.store(true, Ordering::Relaxed);
                Err(KernelError::DeviceLost)
            }
            Some((FaultKind::AllocFailed, _)) => Err(KernelError::OutOfDeviceMemory {
                requested: 0,
                available: self.mem.available(),
            }),
            Some((FaultKind::TransientKernel | FaultKind::TransientTransfer, op)) => {
                Err(KernelError::TransientFault { site, op })
            }
        }
    }

    /// The device's static description.
    pub fn info(&self) -> &DeviceInfo {
        &self.info
    }

    /// The device's global-memory accountant.
    pub fn memory(&self) -> &MemAccountant {
        &self.mem
    }

    /// Whether the device shares the host address space.
    pub fn is_unified(&self) -> bool {
        self.info.unified_memory
    }

    /// Allocates an uninitialised (zeroed) buffer of `words` 32-bit words on
    /// this device.
    pub fn alloc(&self, words: usize, label: &str) -> Result<Buffer> {
        self.alloc_capped(words, label, usize::MAX)
    }

    /// [`Device::alloc`] that additionally respects a caller-supplied cap
    /// on device-wide used bytes (a soft memory budget). The budget check
    /// and the reservation are a single atomic step — see
    /// [`MemAccountant::try_alloc_capped`].
    pub fn alloc_capped(&self, words: usize, label: &str, cap_bytes: usize) -> Result<Buffer> {
        let bytes = words * 4;
        if let Err(error) = self.fault_preflight(FaultSite::Alloc) {
            // An injected allocation fault reports the real request size so
            // the eviction/restart protocol reclaims a meaningful amount.
            return Err(match error {
                KernelError::OutOfDeviceMemory { .. } => KernelError::OutOfDeviceMemory {
                    requested: bytes,
                    available: self.mem.available(),
                },
                other => other,
            });
        }
        self.mem.try_alloc_capped(bytes, cap_bytes)?;
        let id = self.next_buffer_id.fetch_add(1, Ordering::Relaxed);
        self.trace.emit(|| TraceEventKind::Alloc { label: label.to_string(), bytes: bytes as u64 });
        Ok(Buffer::new(id, words, label, Some(Arc::clone(&self.mem))))
    }

    /// Allocates a buffer and fills it with the given `i32` values.
    pub fn alloc_from_i32(&self, values: &[i32], label: &str) -> Result<Buffer> {
        let buf = self.alloc(values.len(), label)?;
        buf.copy_from_i32(values);
        Ok(buf)
    }

    /// Allocates a buffer and fills it with the given `f32` values.
    pub fn alloc_from_f32(&self, values: &[f32], label: &str) -> Result<Buffer> {
        let buf = self.alloc(values.len(), label)?;
        buf.copy_from_f32(values);
        Ok(buf)
    }

    /// Allocates a buffer and fills it with the given `u32` values.
    pub fn alloc_from_u32(&self, values: &[u32], label: &str) -> Result<Buffer> {
        let buf = self.alloc(values.len(), label)?;
        buf.copy_from_u32(values);
        Ok(buf)
    }

    /// The driver's default launch configuration for a problem of `n`
    /// elements: one work-group per core, `4 ×` compute-units work-items per
    /// group, device-preferred access pattern (paper §4.2).
    pub fn launch_config(&self, n: usize) -> LaunchConfig {
        scheduling::default_launch(&self.info, n)
    }

    /// Like [`Device::launch_config`] but reserving `local_words` 32-bit
    /// words of local memory per work-group.
    pub fn launch_config_with_local(&self, n: usize, local_words: usize) -> LaunchConfig {
        scheduling::default_launch(&self.info, n).with_local_words(local_words)
    }

    /// Creates a new lazily-evaluated command queue on this device.
    pub fn create_queue(&self) -> Queue {
        Queue::new(self.clone())
    }

    /// Modeled host/device transfer cost for `bytes` (zero for unified
    /// memory devices).
    pub(crate) fn transfer_ns(&self, bytes: usize) -> u64 {
        if self.info.unified_memory {
            0
        } else {
            self.driver.transfer_ns(bytes)
        }
    }

    pub(crate) fn execute_kernel(
        &self,
        kernel: &Arc<dyn Kernel>,
        launch: &LaunchConfig,
    ) -> DriverReport {
        self.driver.execute(kernel, launch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_enforces_capacity() {
        let acc = MemAccountant::new(100);
        acc.try_alloc(60).unwrap();
        acc.try_alloc(40).unwrap();
        let err = acc.try_alloc(1).unwrap_err();
        assert!(matches!(err, KernelError::OutOfDeviceMemory { .. }));
        acc.release(50);
        acc.try_alloc(30).unwrap();
        assert_eq!(acc.used(), 80);
        assert_eq!(acc.available(), 20);
    }

    #[test]
    fn capped_reservation_is_atomic_and_respects_the_smaller_limit() {
        let acc = MemAccountant::new(1000);
        acc.try_alloc_capped(300, 500).unwrap();
        let err = acc.try_alloc_capped(300, 500).unwrap_err();
        match err {
            KernelError::OutOfDeviceMemory { requested, available } => {
                assert_eq!(requested, 300);
                assert_eq!(available, 200, "available is against the cap, not capacity");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Capacity still binds when it is the smaller limit.
        acc.try_alloc_capped(700, usize::MAX).unwrap();
        assert!(acc.try_alloc_capped(1, usize::MAX).is_err());
        acc.release(1000);
        // Concurrent reservations against a cap never jointly overshoot.
        let acc = std::sync::Arc::new(MemAccountant::new(usize::MAX));
        let grabbed: usize = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let acc = std::sync::Arc::clone(&acc);
                    scope.spawn(move || {
                        (0..100).filter(|_| acc.try_alloc_capped(7, 1000).is_ok()).count() * 7
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(grabbed <= 1000, "cap overshot: {grabbed}");
        assert_eq!(acc.used(), grabbed);
    }

    #[test]
    fn cpu_devices_report_unified_memory() {
        assert!(Device::cpu_sequential().is_unified());
        assert!(Device::cpu_multicore().is_unified());
        assert!(!Device::simulated_gpu(GpuConfig::default()).is_unified());
    }

    #[test]
    fn gpu_allocation_limited_by_device_memory() {
        let cfg = GpuConfig { global_mem_bytes: 1024, ..Default::default() }; // 256 words
        let gpu = Device::simulated_gpu(cfg);
        let _a = gpu.alloc(200, "a").unwrap();
        let err = gpu.alloc(100, "b").unwrap_err();
        assert!(matches!(err, KernelError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn dropping_buffer_frees_device_memory() {
        let cfg = GpuConfig { global_mem_bytes: 1024, ..Default::default() };
        let gpu = Device::simulated_gpu(cfg);
        {
            let _a = gpu.alloc(200, "a").unwrap();
            assert_eq!(gpu.memory().used(), 800);
        }
        assert_eq!(gpu.memory().used(), 0);
        gpu.alloc(256, "b").unwrap();
    }

    #[test]
    fn preferred_access_patterns_match_paper() {
        assert_eq!(Device::cpu_multicore().info().preferred_access, AccessPattern::Contiguous);
        assert_eq!(
            Device::simulated_gpu(GpuConfig::default()).info().preferred_access,
            AccessPattern::Strided
        );
    }

    #[test]
    fn alloc_from_slices_round_trips() {
        let dev = Device::cpu_sequential();
        let ints = dev.alloc_from_i32(&[-1, 2, 3], "ints").unwrap();
        assert_eq!(ints.to_vec_i32(), vec![-1, 2, 3]);
        let floats = dev.alloc_from_f32(&[1.5, -2.5], "floats").unwrap();
        assert_eq!(floats.to_vec_f32(), vec![1.5, -2.5]);
        let words = dev.alloc_from_u32(&[7, 8], "words").unwrap();
        assert_eq!(words.to_vec_u32(), vec![7, 8]);
    }

    #[test]
    fn launch_config_uses_heuristic() {
        let dev = Device::cpu_multicore_with(4);
        let launch = dev.launch_config(1000);
        assert_eq!(launch.num_groups, 4);
        assert_eq!(launch.group_size, 4);
        assert_eq!(launch.access, AccessPattern::Contiguous);

        let gpu = Device::simulated_gpu(GpuConfig::default());
        let launch = gpu.launch_config(1000);
        assert_eq!(launch.num_groups, gpu.info().compute_cores);
        assert_eq!(launch.group_size, 4 * gpu.info().units_per_core);
        assert_eq!(launch.access, AccessPattern::Strided);
    }
}
