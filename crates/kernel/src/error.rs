//! Error types for the kernel runtime.

use crate::fault::FaultSite;
use std::fmt;

/// Convenience alias used across the kernel crate.
pub type Result<T> = std::result::Result<T, KernelError>;

/// Errors raised by the kernel runtime.
///
/// These mirror the error classes an OpenCL host program has to handle:
/// allocation failures against limited device memory, invalid launch
/// configurations, and waiting on events the runtime does not know about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A buffer allocation exceeded the device's remaining global memory.
    ///
    /// The Memory Manager in `ocelot-core` reacts to this by evicting cached
    /// buffers in LRU order and retrying (paper §3.3).
    OutOfDeviceMemory {
        /// Bytes the allocation asked for.
        requested: usize,
        /// Bytes still available on the device.
        available: usize,
    },
    /// The launch configuration is inconsistent (zero-sized groups, etc.).
    InvalidLaunchConfig(String),
    /// An operation referenced an event id the queue has never issued.
    UnknownEvent(u64),
    /// A wait-list references an event that has not completed at flush time.
    ///
    /// Because the queue executes in submission order this indicates a
    /// programming error (an event from a *different* queue, or a cycle).
    IncompleteDependency(u64),
    /// A kernel argument buffer was smaller than the launch required.
    BufferTooSmall {
        /// Human-readable buffer label.
        label: String,
        /// Number of 32-bit words the buffer holds.
        len: usize,
        /// Number of 32-bit words the kernel needed.
        required: usize,
    },
    /// A column handle declared more values than its backing buffer holds.
    ///
    /// Raised by `DevColumn::new` in `ocelot-core` when a (possibly
    /// malformed) plan wraps a buffer with an overlong logical length, so
    /// the error surfaces as a `Result` instead of a panic.
    BufferTooShort {
        /// Human-readable buffer label.
        label: String,
        /// Number of 32-bit words the buffer holds.
        buffer_words: usize,
        /// Number of values the column claimed.
        column_len: usize,
    },
    /// An operation failed transiently (injected by a
    /// [`crate::fault::FaultPlan`], modelling a driver hiccup). The same
    /// operation, re-submitted, may succeed — the engine's recovery
    /// protocol retries the failed plan node with bounded backoff.
    TransientFault {
        /// The site the fault fired at.
        site: FaultSite,
        /// The fault plan's global operation index at firing time.
        op: u64,
    },
    /// The device's context was lost (injected by a
    /// [`crate::fault::FaultPlan`]). Loss is sticky: every further
    /// operation on the device fails with this error. Recovery requires
    /// failing over to a different device.
    DeviceLost,
    /// Generic invariant violation inside the runtime.
    Internal(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::OutOfDeviceMemory { requested, available } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} bytes available"
            ),
            KernelError::InvalidLaunchConfig(msg) => {
                write!(f, "invalid launch configuration: {msg}")
            }
            KernelError::UnknownEvent(id) => write!(f, "unknown event id {id}"),
            KernelError::IncompleteDependency(id) => {
                write!(f, "dependency event {id} has not completed")
            }
            KernelError::BufferTooSmall { label, len, required } => {
                write!(f, "buffer '{label}' holds {len} words but the kernel requires {required}")
            }
            KernelError::BufferTooShort { label, buffer_words, column_len } => {
                write!(
                    f,
                    "buffer '{label}' holds {buffer_words} words but the column declared \
                     {column_len} values"
                )
            }
            KernelError::TransientFault { site, op } => {
                write!(f, "transient {site} fault (operation {op})")
            }
            KernelError::DeviceLost => write!(f, "device lost"),
            KernelError::Internal(msg) => write!(f, "internal kernel runtime error: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_memory() {
        let err = KernelError::OutOfDeviceMemory { requested: 100, available: 10 };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn display_buffer_too_small() {
        let err = KernelError::BufferTooSmall { label: "probe".into(), len: 4, required: 8 };
        assert!(err.to_string().contains("probe"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(KernelError::UnknownEvent(3), KernelError::UnknownEvent(3));
        assert_ne!(KernelError::UnknownEvent(3), KernelError::UnknownEvent(4));
    }
}
