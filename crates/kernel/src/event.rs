//! The OpenCL-style event model (paper §3.4).
//!
//! Every scheduled device operation — a kernel invocation or a host/device
//! transfer — is associated with an [`EventId`]. Operations take a wait-list
//! of events that must have completed before they may run; the Memory
//! Manager in `ocelot-core` keeps *producer* events (operations writing a
//! buffer) and *consumer* events (operations reading it) per buffer and uses
//! them to build those wait-lists, which is what lets Ocelot schedule work
//! lazily and leave reordering freedom to the driver.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a scheduled device operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// What kind of operation an event is tied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A kernel invocation (carries the kernel name).
    Kernel(String),
    /// A host-to-device transfer.
    WriteBuffer,
    /// A device-to-host transfer.
    ReadBuffer,
    /// A user marker (used by the explicit `sync` operator).
    Marker,
}

/// Recorded state of an event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Operation class.
    pub kind: EventKind,
    /// Whether the operation has executed.
    pub completed: bool,
    /// Wall-clock nanoseconds the operation took on the host.
    pub host_ns: u64,
    /// Modeled nanoseconds on the target device.
    pub modeled_ns: u64,
}

/// Registry of all events issued by a queue.
#[derive(Debug, Default)]
pub struct EventRegistry {
    next: AtomicU64,
    records: Mutex<HashMap<EventId, EventRecord>>,
}

impl EventRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        EventRegistry { next: AtomicU64::new(1), records: Mutex::new(HashMap::new()) }
    }

    /// Issues a fresh, incomplete event of the given kind.
    pub fn issue(&self, kind: EventKind) -> EventId {
        let id = EventId(self.next.fetch_add(1, Ordering::Relaxed));
        self.records
            .lock()
            .insert(id, EventRecord { kind, completed: false, host_ns: 0, modeled_ns: 0 });
        id
    }

    /// Marks an event as completed with its timings.
    pub fn complete(&self, id: EventId, host_ns: u64, modeled_ns: u64) {
        if let Some(record) = self.records.lock().get_mut(&id) {
            record.completed = true;
            record.host_ns = host_ns;
            record.modeled_ns = modeled_ns;
        }
    }

    /// Whether the registry knows the event.
    pub fn contains(&self, id: EventId) -> bool {
        self.records.lock().contains_key(&id)
    }

    /// Whether the event has completed.
    pub fn is_complete(&self, id: EventId) -> bool {
        self.records.lock().get(&id).map(|r| r.completed).unwrap_or(false)
    }

    /// A snapshot of the event's record, if known.
    pub fn record(&self, id: EventId) -> Option<EventRecord> {
        self.records.lock().get(&id).cloned()
    }

    /// Number of events issued so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no events have been issued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of modeled nanoseconds over a set of events (used to aggregate a
    /// wait-list's critical path conservatively in tests).
    pub fn total_modeled_ns(&self, ids: &[EventId]) -> u64 {
        let records = self.records.lock();
        ids.iter().filter_map(|id| records.get(id)).map(|r| r.modeled_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_complete() {
        let reg = EventRegistry::new();
        let a = reg.issue(EventKind::Kernel("select".into()));
        let b = reg.issue(EventKind::WriteBuffer);
        assert_ne!(a, b);
        assert!(reg.contains(a));
        assert!(!reg.is_complete(a));

        reg.complete(a, 100, 50);
        assert!(reg.is_complete(a));
        let rec = reg.record(a).unwrap();
        assert_eq!(rec.host_ns, 100);
        assert_eq!(rec.modeled_ns, 50);
        assert_eq!(rec.kind, EventKind::Kernel("select".into()));
        assert!(!reg.is_complete(b));
    }

    #[test]
    fn unknown_events_are_not_complete() {
        let reg = EventRegistry::new();
        assert!(!reg.is_complete(EventId(999)));
        assert!(!reg.contains(EventId(999)));
        assert!(reg.record(EventId(999)).is_none());
    }

    #[test]
    fn totals_over_wait_lists() {
        let reg = EventRegistry::new();
        let a = reg.issue(EventKind::Marker);
        let b = reg.issue(EventKind::Marker);
        reg.complete(a, 10, 20);
        reg.complete(b, 1, 2);
        assert_eq!(reg.total_modeled_ns(&[a, b]), 22);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }
}
