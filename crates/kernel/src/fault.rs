//! Deterministic, seedable fault injection for the kernel runtime.
//!
//! A [`FaultPlan`] is installed on a [`crate::Device`] and consulted at the
//! three places a real OpenCL host program sees device failures surface:
//! **kernel launches**, **host/device transfers** and **buffer
//! allocations** ([`FaultSite`]). When the plan decides an operation
//! faults, the runtime returns a typed [`crate::KernelError`] instead of
//! performing the operation:
//!
//! * [`FaultKind::TransientKernel`] / [`FaultKind::TransientTransfer`] —
//!   a one-shot hiccup ([`crate::KernelError::TransientFault`]): the same
//!   operation, re-submitted, may succeed. The engine's recovery protocol
//!   retries the failed plan node with a bounded backoff schedule.
//! * [`FaultKind::AllocFailed`] — a spurious allocation failure, surfaced
//!   as the *existing* [`crate::KernelError::OutOfDeviceMemory`] so it
//!   rides the same eviction/restart protocol as a genuine out-of-memory
//!   condition (one protocol, two triggers).
//! * [`FaultKind::DeviceLost`] — the device drops off the bus
//!   ([`crate::KernelError::DeviceLost`]). Loss is **sticky**: every
//!   subsequent launch, transfer, allocation or flush on the device fails
//!   until the device object is discarded. Recovery requires failing over
//!   to a different device.
//!
//! Plans come in two flavours, both fully deterministic:
//!
//! * [`FaultPlan::scripted`] — a list of [`FaultSpec`]s pinning faults to
//!   exact per-site operation indices ("fail the 3rd kernel launch",
//!   "lose the device at global operation 40").
//! * [`FaultPlan::seeded`] — seeded-random: each site draws against a
//!   configured rate from an [`rand::rngs::StdRng`]. Equal seeds over equal
//!   operation sequences produce identical fault schedules, which is what
//!   lets chaos tests shrink and replay failures.
//!
//! The plan never *executes* anything; it only answers "does the Nth
//! operation at this site fail, and how". All bookkeeping is behind a
//! mutex, so a plan shared by several queues of one device still counts
//! operations in a single global order.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where in the runtime a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A kernel launch (`Queue::enqueue_kernel`).
    KernelLaunch,
    /// A host/device transfer (`Queue::enqueue_write*` / `enqueue_read*`).
    Transfer,
    /// A device-memory allocation (`Device::alloc*`).
    Alloc,
}

impl FaultSite {
    /// Stable human-readable name (used in error messages).
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::KernelLaunch => "kernel launch",
            FaultSite::Transfer => "transfer",
            FaultSite::Alloc => "allocation",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What kind of fault fires (see module docs for semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient kernel-launch failure — retryable.
    TransientKernel,
    /// Transient transfer failure — retryable.
    TransientTransfer,
    /// Spurious allocation failure — rides the out-of-memory protocol.
    AllocFailed,
    /// Permanent device loss — requires failover.
    DeviceLost,
}

/// One scripted fault, pinned to an exact operation index. Per-kind indices
/// count operations *of the matching site* (0-based): `at_launch: 2` fails
/// the third kernel launch the device sees. [`FaultSpec::DeviceLost`] uses
/// the global operation counter across all sites, so a schedule can place
/// the loss "after roughly this much work" without knowing the site mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fail the `at_launch`-th kernel launch transiently.
    TransientKernel {
        /// 0-based kernel-launch index.
        at_launch: u64,
    },
    /// Fail the `at_transfer`-th transfer transiently.
    TransientTransfer {
        /// 0-based transfer index.
        at_transfer: u64,
    },
    /// Fail the `at_alloc`-th allocation.
    AllocFailed {
        /// 0-based allocation index.
        at_alloc: u64,
    },
    /// Lose the device at the `at_op`-th observed operation (any site).
    DeviceLost {
        /// 0-based global operation index.
        at_op: u64,
    },
}

/// Counters of faults a plan has injected (and operations it has seen) —
/// the assertion surface for tests and demos.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient kernel-launch faults injected.
    pub transient_kernel: u64,
    /// Transient transfer faults injected.
    pub transient_transfer: u64,
    /// Allocation faults injected.
    pub alloc_failed: u64,
    /// Device losses injected (0 or 1 — loss is sticky).
    pub device_lost: u64,
    /// Total operations observed across all sites.
    pub ops_observed: u64,
}

impl FaultStats {
    /// Total faults injected, of every kind.
    pub fn total(&self) -> u64 {
        self.transient_kernel + self.transient_transfer + self.alloc_failed + self.device_lost
    }

    /// Projects these counters into a [`ocelot_trace::MetricsRegistry`]
    /// under `<prefix>.transient_kernel`, `<prefix>.transient_transfer`,
    /// `<prefix>.alloc_failed`, `<prefix>.device_lost` and
    /// `<prefix>.ops_observed`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut ocelot_trace::MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.transient_kernel"), self.transient_kernel);
        registry.set_counter(&format!("{prefix}.transient_transfer"), self.transient_transfer);
        registry.set_counter(&format!("{prefix}.alloc_failed"), self.alloc_failed);
        registry.set_counter(&format!("{prefix}.device_lost"), self.device_lost);
        registry.set_counter(&format!("{prefix}.ops_observed"), self.ops_observed);
    }
}

#[derive(Default)]
struct Counters {
    ops: u64,
    launches: u64,
    transfers: u64,
    allocs: u64,
}

enum Mode {
    Scripted(Vec<FaultSpec>),
    Random { rng: StdRng, transient_rate: f64, alloc_rate: f64, lose_device_at_op: Option<u64> },
}

struct PlanState {
    mode: Mode,
    counters: Counters,
    stats: FaultStats,
}

/// A deterministic fault schedule (see module docs). Install on a device
/// with `Device::install_fault_plan`.
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A scripted plan: faults fire exactly at the specified operation
    /// indices, nothing else ever fails.
    pub fn scripted(faults: impl Into<Vec<FaultSpec>>) -> FaultPlan {
        FaultPlan {
            state: Mutex::new(PlanState {
                mode: Mode::Scripted(faults.into()),
                counters: Counters::default(),
                stats: FaultStats::default(),
            }),
        }
    }

    /// A seeded-random plan: every kernel launch and transfer faults with
    /// probability `transient_rate`, every allocation with `alloc_rate`.
    /// Equal seeds over equal operation sequences produce identical
    /// schedules.
    pub fn seeded(seed: u64, transient_rate: f64, alloc_rate: f64) -> FaultPlan {
        FaultPlan {
            state: Mutex::new(PlanState {
                mode: Mode::Random {
                    rng: StdRng::seed_from_u64(seed),
                    transient_rate,
                    alloc_rate,
                    lose_device_at_op: None,
                },
                counters: Counters::default(),
                stats: FaultStats::default(),
            }),
        }
    }

    /// Additionally loses the device at the `op`-th observed operation
    /// (builder; applies to seeded plans — scripted plans place the loss
    /// with [`FaultSpec::DeviceLost`]).
    pub fn lose_device_at_op(self, op: u64) -> FaultPlan {
        {
            let mut state = self.state.lock();
            if let Mode::Random { lose_device_at_op, .. } = &mut state.mode {
                *lose_device_at_op = Some(op);
            }
        }
        self
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Decides whether the next operation at `site` faults. Advances the
    /// operation counters either way. Returns the fault kind and the global
    /// operation index it fired at.
    pub(crate) fn fire(&self, site: FaultSite) -> Option<(FaultKind, u64)> {
        let mut state = self.state.lock();
        let op = state.counters.ops;
        state.counters.ops += 1;
        state.stats.ops_observed += 1;
        let site_index = match site {
            FaultSite::KernelLaunch => {
                let n = state.counters.launches;
                state.counters.launches += 1;
                n
            }
            FaultSite::Transfer => {
                let n = state.counters.transfers;
                state.counters.transfers += 1;
                n
            }
            FaultSite::Alloc => {
                let n = state.counters.allocs;
                state.counters.allocs += 1;
                n
            }
        };
        let kind = match &mut state.mode {
            Mode::Scripted(specs) => specs.iter().find_map(|spec| match (*spec, site) {
                (FaultSpec::DeviceLost { at_op }, _) if at_op == op => Some(FaultKind::DeviceLost),
                (FaultSpec::TransientKernel { at_launch }, FaultSite::KernelLaunch)
                    if at_launch == site_index =>
                {
                    Some(FaultKind::TransientKernel)
                }
                (FaultSpec::TransientTransfer { at_transfer }, FaultSite::Transfer)
                    if at_transfer == site_index =>
                {
                    Some(FaultKind::TransientTransfer)
                }
                (FaultSpec::AllocFailed { at_alloc }, FaultSite::Alloc)
                    if at_alloc == site_index =>
                {
                    Some(FaultKind::AllocFailed)
                }
                _ => None,
            }),
            Mode::Random { rng, transient_rate, alloc_rate, lose_device_at_op } => {
                if *lose_device_at_op == Some(op) {
                    Some(FaultKind::DeviceLost)
                } else {
                    let rate = match site {
                        FaultSite::Alloc => *alloc_rate,
                        _ => *transient_rate,
                    };
                    // Draw even at rate 0 so adding a zero-rate site never
                    // shifts the schedule of the others.
                    let draw: f64 = rng.gen_range(0.0..1.0);
                    if draw < rate {
                        Some(match site {
                            FaultSite::KernelLaunch => FaultKind::TransientKernel,
                            FaultSite::Transfer => FaultKind::TransientTransfer,
                            FaultSite::Alloc => FaultKind::AllocFailed,
                        })
                    } else {
                        None
                    }
                }
            }
        };
        match kind {
            Some(FaultKind::TransientKernel) => state.stats.transient_kernel += 1,
            Some(FaultKind::TransientTransfer) => state.stats.transient_transfer += 1,
            Some(FaultKind::AllocFailed) => state.stats.alloc_failed += 1,
            Some(FaultKind::DeviceLost) => state.stats.device_lost += 1,
            None => {}
        }
        kind.map(|k| (k, op))
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        let mode = match &state.mode {
            Mode::Scripted(specs) => format!("scripted({} faults)", specs.len()),
            Mode::Random { transient_rate, alloc_rate, lose_device_at_op, .. } => format!(
                "seeded(transient={transient_rate}, alloc={alloc_rate}, lost_at={lose_device_at_op:?})"
            ),
        };
        f.debug_struct("FaultPlan").field("mode", &mode).field("stats", &state.stats).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_faults_fire_at_exact_indices() {
        let plan = FaultPlan::scripted(vec![
            FaultSpec::TransientKernel { at_launch: 1 },
            FaultSpec::AllocFailed { at_alloc: 0 },
        ]);
        assert_eq!(plan.fire(FaultSite::Alloc), Some((FaultKind::AllocFailed, 0)));
        assert_eq!(plan.fire(FaultSite::KernelLaunch), None);
        assert_eq!(plan.fire(FaultSite::KernelLaunch), Some((FaultKind::TransientKernel, 2)));
        assert_eq!(plan.fire(FaultSite::KernelLaunch), None);
        let stats = plan.stats();
        assert_eq!(stats.transient_kernel, 1);
        assert_eq!(stats.alloc_failed, 1);
        assert_eq!(stats.ops_observed, 4);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn device_lost_uses_the_global_op_counter() {
        let plan = FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 2 }]);
        assert_eq!(plan.fire(FaultSite::Transfer), None);
        assert_eq!(plan.fire(FaultSite::Alloc), None);
        assert_eq!(plan.fire(FaultSite::KernelLaunch), Some((FaultKind::DeviceLost, 2)));
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let sequence = [
            FaultSite::Alloc,
            FaultSite::Transfer,
            FaultSite::KernelLaunch,
            FaultSite::KernelLaunch,
            FaultSite::Transfer,
        ];
        let a = FaultPlan::seeded(42, 0.5, 0.5);
        let b = FaultPlan::seeded(42, 0.5, 0.5);
        for _ in 0..200 {
            for site in sequence {
                assert_eq!(a.fire(site), b.fire(site));
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "a 50% rate over 1000 ops must fire");
    }

    #[test]
    fn zero_rate_plans_never_fire() {
        let plan = FaultPlan::seeded(7, 0.0, 0.0);
        for _ in 0..500 {
            assert_eq!(plan.fire(FaultSite::KernelLaunch), None);
            assert_eq!(plan.fire(FaultSite::Alloc), None);
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn seeded_loss_fires_at_the_configured_op() {
        let plan = FaultPlan::seeded(3, 0.0, 0.0).lose_device_at_op(1);
        assert_eq!(plan.fire(FaultSite::KernelLaunch), None);
        assert_eq!(plan.fire(FaultSite::KernelLaunch), Some((FaultKind::DeviceLost, 1)));
        assert_eq!(plan.stats().device_lost, 1);
    }
}
