//! Performance model of the simulated discrete GPU.
//!
//! There is no physical GPU (and no OpenCL driver) in the reproduction
//! environment, so the GPU device executes kernels bit-faithfully on host
//! threads and *accounts* a modeled execution time instead of measuring one.
//! The model captures the three effects the paper's GPU results hinge on:
//!
//! 1. **High device-memory bandwidth** when accesses are coalesced — the
//!    reason Ocelot-on-GPU beats the CPU configurations while data is
//!    resident (Figures 5 and 7a).
//! 2. **A PCIe-like transfer cost** for every host/device copy — the reason
//!    the GPU's lead shrinks once the Memory Manager has to swap buffers in
//!    and out (Figure 7b, 7d).
//! 3. **Limited global memory** — the reason GPU curves end midway in the
//!    microbenchmarks and the reason scale-factor-50 TPC-H is CPU-only
//!    (Figure 7c).
//!
//! Default parameters are modeled after the paper's NVIDIA GTX 460 (7
//! multiprocessors × 48 compute units, 48 KiB local memory) with the global
//! memory capacity left configurable so benchmarks can downscale it together
//! with the downscaled data volumes.

use crate::device::AccessPattern;
use crate::kernel::KernelCost;
use crate::scheduling::LaunchConfig;

/// Configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of multiprocessors (cores). GTX 460: 7.
    pub multiprocessors: usize,
    /// Compute units per multiprocessor. GTX 460: 48.
    pub units_per_multiprocessor: usize,
    /// Bytes of global device memory available to buffers.
    pub global_mem_bytes: usize,
    /// Bytes of local (on-chip, per work-group) memory. GTX 460: 48 KiB.
    pub local_mem_bytes: usize,
    /// Device-memory bandwidth in GiB/s for coalesced access.
    pub mem_bandwidth_gib: f64,
    /// Penalty factor applied to bandwidth when the launch uses the
    /// contiguous (non-coalesced) access pattern.
    pub uncoalesced_penalty: f64,
    /// PCIe transfer bandwidth in GiB/s.
    pub pcie_bandwidth_gib: f64,
    /// Scalar-operation throughput in billions of operations per second.
    pub giga_ops: f64,
    /// Cost of a single global atomic operation in nanoseconds.
    pub atomic_ns: f64,
    /// Fixed overhead per kernel launch in nanoseconds.
    pub launch_overhead_ns: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            multiprocessors: 7,
            units_per_multiprocessor: 48,
            // The real card has 2 GiB; the default here is smaller so that the
            // downscaled benchmark workloads exercise the same
            // "data no longer fits" transitions the paper reports.
            global_mem_bytes: 256 * 1024 * 1024,
            local_mem_bytes: 48 * 1024,
            mem_bandwidth_gib: 90.0,
            uncoalesced_penalty: 4.0,
            pcie_bandwidth_gib: 6.0,
            giga_ops: 450.0,
            atomic_ns: 1.5,
            launch_overhead_ns: 5_000,
        }
    }
}

impl GpuConfig {
    /// A configuration whose device memory is limited to `bytes`, used by
    /// tests and benchmarks that need to trigger eviction and host offload.
    pub fn with_global_mem(mut self, bytes: usize) -> Self {
        self.global_mem_bytes = bytes;
        self
    }

    /// Scales the compute-side parameters (bandwidth and operation
    /// throughput) by `factor`, keeping transfer costs fixed. Useful for
    /// ablation benchmarks over device capability.
    pub fn scaled_compute(mut self, factor: f64) -> Self {
        self.mem_bandwidth_gib *= factor;
        self.giga_ops *= factor;
        self
    }
}

/// The cost model derived from a [`GpuConfig`].
#[derive(Debug, Clone)]
pub struct GpuCostModel {
    config: GpuConfig,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl GpuCostModel {
    /// Builds the model.
    pub fn new(config: GpuConfig) -> Self {
        GpuCostModel { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Modeled execution time of one kernel launch.
    ///
    /// The kernel is modeled as bandwidth-bound or compute-bound (whichever
    /// is slower), with an additive penalty for global atomics and a fixed
    /// launch overhead.
    pub fn kernel_ns(&self, cost: &KernelCost, launch: &LaunchConfig) -> u64 {
        let bandwidth = match launch.access {
            AccessPattern::Strided => self.config.mem_bandwidth_gib,
            AccessPattern::Contiguous => {
                self.config.mem_bandwidth_gib / self.config.uncoalesced_penalty.max(1.0)
            }
        };
        let memory_ns = (cost.bytes_total() as f64) / (bandwidth * GIB) * 1e9;
        let compute_ns = (cost.scalar_ops as f64) / (self.config.giga_ops * 1e9) * 1e9;
        let atomic_ns = (cost.atomic_ops as f64) * self.config.atomic_ns;
        let body = memory_ns.max(compute_ns) + atomic_ns;
        self.config.launch_overhead_ns + body.round() as u64
    }

    /// Modeled cost of moving `bytes` across the PCIe link.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let ns = (bytes as f64) / (self.config.pcie_bandwidth_gib * GIB) * 1e9;
        // A small fixed latency per transfer keeps many tiny transfers more
        // expensive than one large one, like a real PCIe link.
        2_000 + ns.round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccessPattern;

    fn launch(access: AccessPattern) -> LaunchConfig {
        LaunchConfig::new(7, 192, 1 << 20, access)
    }

    #[test]
    fn coalesced_access_is_faster() {
        let model = GpuCostModel::new(GpuConfig::default());
        let cost = KernelCost::streaming(1 << 20);
        let coalesced = model.kernel_ns(&cost, &launch(AccessPattern::Strided));
        let uncoalesced = model.kernel_ns(&cost, &launch(AccessPattern::Contiguous));
        assert!(uncoalesced > coalesced);
    }

    #[test]
    fn atomics_add_cost() {
        let model = GpuCostModel::new(GpuConfig::default());
        let mut cost = KernelCost::streaming(1 << 20);
        let without = model.kernel_ns(&cost, &launch(AccessPattern::Strided));
        cost.atomic_ops = 1 << 20;
        let with = model.kernel_ns(&cost, &launch(AccessPattern::Strided));
        assert!(with > without);
    }

    #[test]
    fn larger_kernels_cost_more() {
        let model = GpuCostModel::new(GpuConfig::default());
        let small =
            model.kernel_ns(&KernelCost::streaming(1 << 10), &launch(AccessPattern::Strided));
        let large =
            model.kernel_ns(&KernelCost::streaming(1 << 24), &launch(AccessPattern::Strided));
        assert!(large > small);
    }

    #[test]
    fn transfers_scale_with_bytes_and_zero_is_free() {
        let model = GpuCostModel::new(GpuConfig::default());
        assert_eq!(model.transfer_ns(0), 0);
        let one_mib = model.transfer_ns(1 << 20);
        let ten_mib = model.transfer_ns(10 << 20);
        assert!(ten_mib > one_mib);
        assert!(one_mib > 0);
    }

    #[test]
    fn config_builders() {
        let cfg = GpuConfig::default().with_global_mem(1024).scaled_compute(2.0);
        assert_eq!(cfg.global_mem_bytes, 1024);
        assert!(cfg.mem_bandwidth_gib > GpuConfig::default().mem_bandwidth_gib);
    }

    #[test]
    fn launch_overhead_is_always_charged() {
        let model = GpuCostModel::new(GpuConfig::default());
        let empty = KernelCost::new(0, 0, 0, 0);
        let ns = model.kernel_ns(&empty, &launch(AccessPattern::Strided));
        assert!(ns >= GpuConfig::default().launch_overhead_ns);
    }
}
