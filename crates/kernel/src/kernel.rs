//! The kernel programming model: kernels, work-groups, work-items and local
//! memory.
//!
//! A [`Kernel`] in this runtime is invoked once per *work-group*. Inside
//! [`Kernel::run_group`] the kernel iterates over its work-items with
//! [`WorkGroupCtx::items`]; the items are executed sequentially by the thread
//! that owns the group, which is exactly how OpenCL CPU drivers serialize
//! work-items. Consequently a `barrier()` between two item loops is a
//! no-op — the first loop has fully finished before the second starts — and
//! kernels express their barrier-separated phases simply as consecutive
//! `for item in group.items()` loops.
//!
//! Each work-item owns a sequential slice of the logical input `0..n`
//! (`⌈n / total_items⌉` elements, paper §4.2). How that slice is laid out is
//! the *driver's* decision, injected through [`AccessPattern`]:
//! contiguous chunks on CPUs (cache/prefetcher friendly) or a strided
//! interleaving on GPUs (coalescing friendly). Operator code just writes
//! `for idx in item.assigned()` and stays hardware-oblivious.

use crate::device::AccessPattern;
use crate::scheduling::LaunchConfig;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};

/// Cost declaration used by the simulated GPU's performance model.
///
/// Kernels may override [`Kernel::cost`] to describe how many bytes they
/// stream and how many atomic operations they issue; the default assumes a
/// simple read-transform-write streaming kernel over `n` four-byte values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCost {
    /// Bytes read from global memory.
    pub bytes_read: u64,
    /// Bytes written to global memory.
    pub bytes_written: u64,
    /// Scalar arithmetic/compare operations executed.
    pub scalar_ops: u64,
    /// Atomic operations on global or local memory.
    pub atomic_ops: u64,
}

impl KernelCost {
    /// A streaming kernel that reads and writes `n` four-byte elements.
    pub fn streaming(n: usize) -> KernelCost {
        KernelCost {
            bytes_read: (n as u64) * 4,
            bytes_written: (n as u64) * 4,
            scalar_ops: n as u64,
            atomic_ops: 0,
        }
    }

    /// An explicitly specified cost.
    pub fn new(bytes_read: u64, bytes_written: u64, scalar_ops: u64, atomic_ops: u64) -> Self {
        KernelCost { bytes_read, bytes_written, scalar_ops, atomic_ops }
    }

    /// Total bytes moved through global memory.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// A data-parallel kernel, the unit of work scheduled on a [`crate::Queue`].
pub trait Kernel: Send + Sync {
    /// Short name used in profiles and error messages.
    fn name(&self) -> &str;

    /// Executes one work-group. Called once per group id in `0..num_groups`,
    /// potentially concurrently from different threads.
    fn run_group(&self, group: &mut WorkGroupCtx);

    /// Cost hint for the simulated GPU's performance model.
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::streaming(launch.n)
    }

    /// Declared buffer access sets for the device-phase race detector
    /// (see [`crate::race`]). `None` — the default — means the kernel does
    /// not declare its accesses and the detector skips it conservatively.
    /// Kernels that use tier-2 slice views should override this with the
    /// buffer word ranges they read and write under the given launch.
    fn declared_accesses(&self, launch: &LaunchConfig) -> Option<crate::race::KernelAccesses> {
        let _ = launch;
        None
    }
}

/// Work-group local memory: a small arena of 32-bit atomic cells shared by
/// the items of one work-group (the OpenCL `__local` address space).
pub struct LocalMem {
    words: Box<[AtomicU32]>,
}

impl LocalMem {
    /// Allocates `words` zeroed local-memory cells.
    pub fn new(words: usize) -> LocalMem {
        LocalMem { words: (0..words).map(|_| AtomicU32::new(0)).collect() }
    }

    /// Number of 32-bit words available.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Direct access to an atomic cell (for local atomics).
    #[inline]
    pub fn cell(&self, idx: usize) -> &AtomicU32 {
        &self.words[idx]
    }

    /// Raw word load.
    #[inline]
    pub fn get_u32(&self, idx: usize) -> u32 {
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Raw word store.
    #[inline]
    pub fn set_u32(&self, idx: usize, value: u32) {
        self.words[idx].store(value, Ordering::Relaxed);
    }

    /// Signed-integer load.
    #[inline]
    pub fn get_i32(&self, idx: usize) -> i32 {
        self.get_u32(idx) as i32
    }

    /// Signed-integer store.
    #[inline]
    pub fn set_i32(&self, idx: usize, value: i32) {
        self.set_u32(idx, value as u32);
    }

    /// Floating-point load.
    #[inline]
    pub fn get_f32(&self, idx: usize) -> f32 {
        f32::from_bits(self.get_u32(idx))
    }

    /// Floating-point store.
    #[inline]
    pub fn set_f32(&self, idx: usize, value: f32) {
        self.set_u32(idx, value.to_bits());
    }

    /// Fills the whole arena with `value`.
    pub fn fill_u32(&self, value: u32) {
        for cell in self.words.iter() {
            cell.store(value, Ordering::Relaxed);
        }
    }
}

/// Per-work-group execution context handed to [`Kernel::run_group`].
pub struct WorkGroupCtx {
    group_id: usize,
    num_groups: usize,
    group_size: usize,
    n: usize,
    access: AccessPattern,
    local: LocalMem,
}

impl WorkGroupCtx {
    /// Builds the context for one group of the given launch.
    pub fn new(group_id: usize, launch: &LaunchConfig) -> WorkGroupCtx {
        WorkGroupCtx {
            group_id,
            num_groups: launch.num_groups,
            group_size: launch.group_size,
            n: launch.n,
            access: launch.access,
            local: LocalMem::new(launch.local_mem_words),
        }
    }

    /// This group's id in `0..num_groups`.
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// Total number of work-groups in the launch.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of work-items in this group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total number of work-items across all groups.
    pub fn total_items(&self) -> usize {
        self.num_groups * self.group_size
    }

    /// Logical problem size of the launch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The group's local memory arena.
    pub fn local(&self) -> &LocalMem {
        &self.local
    }

    /// Work-group barrier. Work-items are serialized within a group, so two
    /// consecutive [`WorkGroupCtx::items`] loops are already separated by a
    /// full barrier; this method exists to keep kernel code structurally
    /// close to its OpenCL counterpart.
    pub fn barrier(&self) {}

    /// Iterates over the work-items of this group.
    pub fn items(&self) -> impl Iterator<Item = WorkItem> + '_ {
        let group_id = self.group_id;
        let group_size = self.group_size;
        let total_items = self.total_items();
        let n = self.n;
        let access = self.access;
        (0..group_size).map(move |local_id| WorkItem {
            local_id,
            global_id: group_id * group_size + local_id,
            total_items,
            n,
            access,
        })
    }
}

/// A single work-item (one logical kernel invocation).
#[derive(Debug, Clone, Copy)]
pub struct WorkItem {
    /// Index of the item within its work-group.
    pub local_id: usize,
    /// Globally unique invocation id (`get_global_id(0)` in OpenCL).
    pub global_id: usize,
    total_items: usize,
    n: usize,
    access: AccessPattern,
}

impl WorkItem {
    /// Total number of work-items in the launch.
    pub fn total_items(&self) -> usize {
        self.total_items
    }

    /// Logical problem size of the launch.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The global element indices this work-item is responsible for, laid
    /// out according to the driver's preferred access pattern.
    pub fn assigned(&self) -> AssignedIndices {
        match self.access {
            AccessPattern::Contiguous => {
                let chunk =
                    if self.total_items == 0 { 0 } else { self.n.div_ceil(self.total_items) };
                let start = (self.global_id * chunk).min(self.n);
                let end = ((self.global_id + 1) * chunk).min(self.n);
                AssignedIndices::Contiguous(start..end)
            }
            AccessPattern::Strided => AssignedIndices::Strided {
                next: self.global_id,
                stride: self.total_items.max(1),
                n: self.n,
            },
        }
    }

    /// The contiguous chunk bounds `(start, end)` this item would get under
    /// the contiguous pattern — useful for kernels that need per-item output
    /// regions regardless of the read pattern (e.g. the selection bitmap
    /// kernel writes one byte per eight input values).
    pub fn chunk_bounds(&self, elements: usize) -> (usize, usize) {
        let chunk = if self.total_items == 0 { 0 } else { elements.div_ceil(self.total_items) };
        let start = (self.global_id * chunk).min(elements);
        let end = ((self.global_id + 1) * chunk).min(elements);
        (start, end)
    }
}

/// Iterator over the element indices assigned to a work-item.
#[derive(Debug, Clone)]
pub enum AssignedIndices {
    /// Contiguous chunk (CPU pattern).
    Contiguous(Range<usize>),
    /// Strided interleaving (GPU / coalesced pattern).
    Strided {
        /// Next index to yield.
        next: usize,
        /// Distance between consecutive indices (total number of work-items).
        stride: usize,
        /// Exclusive upper bound.
        n: usize,
    },
}

impl AssignedIndices {
    /// The assignment as a contiguous index range, when it is one.
    ///
    /// Streaming kernels use this to take a bulk slice view of their chunk
    /// (one bounds check per chunk instead of per element) and fall back to
    /// per-index iteration for the strided/coalesced pattern, where the
    /// assignment is not a slice.
    #[inline]
    pub fn as_range(&self) -> Option<Range<usize>> {
        match self {
            AssignedIndices::Contiguous(range) => Some(range.clone()),
            AssignedIndices::Strided { .. } => None,
        }
    }
}

impl Iterator for AssignedIndices {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            AssignedIndices::Contiguous(range) => range.next(),
            AssignedIndices::Strided { next, stride, n } => {
                if *next < *n {
                    let idx = *next;
                    *next += *stride;
                    Some(idx)
                } else {
                    None
                }
            }
        }
    }
}

/// Runs a range of work-groups of a launch on the calling thread. Drivers
/// partition the group range across their threads and call this for each
/// partition.
pub fn run_group_range(kernel: &dyn Kernel, launch: &LaunchConfig, groups: Range<usize>) {
    for group_id in groups {
        let mut ctx = WorkGroupCtx::new(group_id, launch);
        kernel.run_group(&mut ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn coverage(launch: &LaunchConfig) -> Vec<usize> {
        let mut all = Vec::new();
        for g in 0..launch.num_groups {
            let ctx = WorkGroupCtx::new(g, launch);
            for item in ctx.items() {
                all.extend(item.assigned());
            }
        }
        all
    }

    #[test]
    fn contiguous_pattern_covers_every_index_once() {
        for n in [0usize, 1, 7, 100, 1000, 1023] {
            let launch = LaunchConfig::new(4, 4, n, AccessPattern::Contiguous);
            let all = coverage(&launch);
            assert_eq!(all.len(), n, "n={n}");
            let unique: HashSet<_> = all.iter().copied().collect();
            assert_eq!(unique.len(), n);
            assert!(all.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn strided_pattern_covers_every_index_once() {
        for n in [0usize, 1, 7, 100, 1000, 1023] {
            let launch = LaunchConfig::new(4, 4, n, AccessPattern::Strided);
            let all = coverage(&launch);
            assert_eq!(all.len(), n, "n={n}");
            let unique: HashSet<_> = all.iter().copied().collect();
            assert_eq!(unique.len(), n);
        }
    }

    #[test]
    fn strided_neighbouring_items_access_neighbouring_indices() {
        let launch = LaunchConfig::new(1, 4, 16, AccessPattern::Strided);
        let ctx = WorkGroupCtx::new(0, &launch);
        let firsts: Vec<usize> = ctx.items().map(|item| item.assigned().next().unwrap()).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3], "coalesced: item i starts at index i");
    }

    #[test]
    fn contiguous_items_walk_disjoint_chunks() {
        let launch = LaunchConfig::new(1, 4, 16, AccessPattern::Contiguous);
        let ctx = WorkGroupCtx::new(0, &launch);
        let ranges: Vec<Vec<usize>> = ctx.items().map(|item| item.assigned().collect()).collect();
        assert_eq!(ranges[0], vec![0, 1, 2, 3]);
        assert_eq!(ranges[3], vec![12, 13, 14, 15]);
    }

    #[test]
    fn global_ids_are_unique_across_groups() {
        let launch = LaunchConfig::new(3, 5, 100, AccessPattern::Contiguous);
        let mut ids = HashSet::new();
        for g in 0..launch.num_groups {
            let ctx = WorkGroupCtx::new(g, &launch);
            for item in ctx.items() {
                assert!(ids.insert(item.global_id));
            }
        }
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn local_memory_is_zeroed_and_typed() {
        let local = LocalMem::new(8);
        assert_eq!(local.len(), 8);
        assert_eq!(local.get_u32(3), 0);
        local.set_f32(0, 2.5);
        local.set_i32(1, -9);
        assert_eq!(local.get_f32(0), 2.5);
        assert_eq!(local.get_i32(1), -9);
        local.fill_u32(1);
        assert_eq!(local.get_u32(7), 1);
    }

    #[test]
    fn chunk_bounds_cover_custom_element_count() {
        let launch = LaunchConfig::new(2, 2, 100, AccessPattern::Strided);
        let mut covered = Vec::new();
        for g in 0..2 {
            let ctx = WorkGroupCtx::new(g, &launch);
            for item in ctx.items() {
                let (s, e) = item.chunk_bounds(13);
                covered.extend(s..e);
            }
        }
        covered.sort_unstable();
        assert_eq!(covered, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn kernel_cost_defaults() {
        let cost = KernelCost::streaming(100);
        assert_eq!(cost.bytes_read, 400);
        assert_eq!(cost.bytes_written, 400);
        assert_eq!(cost.bytes_total(), 800);
        assert_eq!(cost.atomic_ops, 0);
    }
}
