//! # ocelot-kernel — a kernel-programming-model runtime
//!
//! This crate is the substrate that replaces OpenCL in the Rust reproduction
//! of *"Hardware-Oblivious Parallelism for In-Memory Column-Stores"*
//! (Heimel et al., VLDB 2013). It provides the abstractions the paper's
//! operators are written against:
//!
//! * [`Device`] — an abstract compute device described by a [`DeviceInfo`]
//!   (core count, compute units per core, local/global memory sizes, unified
//!   vs. discrete memory, preferred memory-access pattern). Three device
//!   "drivers" are provided: a sequential CPU driver, a multi-core CPU driver
//!   backed by a work-stealing-free thread pool, and a **simulated discrete
//!   GPU** driver that executes kernels bit-faithfully on host threads while
//!   accounting a modeled execution time from a calibrated cost model
//!   ([`GpuConfig`]).
//! * [`Buffer`] — the `cl_mem` analogue: a flat array of 32-bit words living
//!   in host memory, with residency tracking against the owning device's
//!   global-memory budget.
//! * [`Kernel`] — the kernel trait. A kernel is executed once per
//!   *work-group*; inside the group, work-items are serialized exactly like
//!   an OpenCL CPU driver serializes them, and each work-item owns a
//!   sequential slice of the input chosen by the device's preferred
//!   [`AccessPattern`] (contiguous chunks on CPUs, strided/coalesced
//!   interleaving on GPUs — paper §4.2, Figure 4).
//! * [`Queue`] — a lazily evaluated command queue with an event model:
//!   operators only *schedule* kernel invocations and transfers together with
//!   wait-lists; nothing runs until [`Queue::flush`] (paper §3.4).
//!
//! The crate is deliberately free of any relational logic: it only knows
//! about devices, buffers, kernels and events. Everything database-shaped
//! lives in `ocelot-core` on top of this interface, which is what makes those
//! operators *hardware-oblivious*.
//!
//! ## Example
//!
//! ```
//! use ocelot_kernel::{Device, Kernel, KernelCost, LaunchConfig, WorkGroupCtx};
//! use std::sync::Arc;
//!
//! /// The "add a constant" kernel from Listing 1 of the paper.
//! struct AddConst {
//!     input: ocelot_kernel::Buffer,
//!     output: ocelot_kernel::Buffer,
//!     constant: i32,
//! }
//!
//! impl Kernel for AddConst {
//!     fn name(&self) -> &str { "add_const" }
//!     fn run_group(&self, group: &mut WorkGroupCtx) {
//!         for item in group.items() {
//!             for idx in item.assigned() {
//!                 let v = self.input.get_i32(idx);
//!                 self.output.set_i32(idx, v + self.constant);
//!             }
//!         }
//!     }
//! }
//!
//! let device = Device::cpu_multicore();
//! let n = 1024;
//! let input = device.alloc(n, "input").unwrap();
//! let output = device.alloc(n, "output").unwrap();
//! for i in 0..n {
//!     input.set_i32(i, i as i32);
//! }
//!
//! let queue = device.create_queue();
//! let launch = device.launch_config(n);
//! let kernel = Arc::new(AddConst { input: input.clone(), output: output.clone(), constant: 7 });
//! let ev = queue.enqueue_kernel(kernel, launch, &[]).unwrap();
//! queue.flush().unwrap();
//! assert!(queue.events().is_complete(ev));
//! assert_eq!(output.get_i32(100), 107);
//! ```

pub mod atomic;
pub mod buffer;
pub mod device;
pub mod error;
pub mod event;
pub mod fault;
pub mod gpu_sim;
pub mod kernel;
pub mod queue;
pub mod race;
pub mod scheduling;
pub mod thread_pool;

pub use buffer::{Buffer, HostCopy};
pub use device::{AccessPattern, Device, DeviceInfo, DeviceKind, MemAccountant};
pub use error::{KernelError, Result};
pub use event::{EventId, EventKind, EventRegistry};
pub use fault::{FaultKind, FaultPlan, FaultSite, FaultSpec, FaultStats};
pub use gpu_sim::{GpuConfig, GpuCostModel};
pub use kernel::{Kernel, KernelCost, LocalMem, WorkGroupCtx, WorkItem};
pub use queue::{FlushStats, KernelProfile, Queue};
pub use race::{
    AccessMode, AccessTier, BitmapClaim, BufferAccess, KernelAccesses, RaceDetector,
    RaceDiagnostic, RaceStats,
};
pub use scheduling::LaunchConfig;
pub use thread_pool::ThreadPool;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct Doubler {
        buf: Buffer,
    }

    impl Kernel for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn run_group(&self, group: &mut WorkGroupCtx) {
            for item in group.items() {
                for idx in item.assigned() {
                    let v = self.buf.get_i32(idx);
                    self.buf.set_i32(idx, v * 2);
                }
            }
        }
    }

    fn run_doubler_on(device: &Device, n: usize) -> Vec<i32> {
        let buf = device.alloc(n, "data").unwrap();
        for i in 0..n {
            buf.set_i32(i, i as i32);
        }
        let queue = device.create_queue();
        let launch = device.launch_config(n);
        queue.enqueue_kernel(Arc::new(Doubler { buf: buf.clone() }), launch, &[]).unwrap();
        queue.flush().unwrap();
        (0..n).map(|i| buf.get_i32(i)).collect()
    }

    #[test]
    fn same_kernel_runs_on_all_devices() {
        let n = 10_000;
        let expected: Vec<i32> = (0..n as i32).map(|v| v * 2).collect();
        for device in [
            Device::cpu_sequential(),
            Device::cpu_multicore(),
            Device::simulated_gpu(GpuConfig::default()),
        ] {
            assert_eq!(run_doubler_on(&device, n), expected, "device {:?}", device.info().kind);
        }
    }

    #[test]
    fn empty_input_is_fine() {
        for device in [Device::cpu_sequential(), Device::cpu_multicore()] {
            assert!(run_doubler_on(&device, 0).is_empty());
        }
    }
}
