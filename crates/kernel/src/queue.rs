//! Lazily evaluated command queues (paper §3.4).
//!
//! Ocelot operators never execute work directly: they *enqueue* kernel
//! invocations and host/device transfers together with wait-lists of
//! [`EventId`]s and immediately return. Nothing runs until [`Queue::flush`]
//! (or [`Queue::finish`]) is called — typically by the explicit `sync`
//! operator that hands result ownership back to MonetDB, or by the Memory
//! Manager before it evicts a buffer.
//!
//! The queue executes operations in submission order, which is always a
//! valid topological order because wait-lists can only reference events that
//! were issued earlier. Per-operation timings are recorded in the
//! [`EventRegistry`] and, when profiling is enabled, as [`KernelProfile`]
//! entries.

use crate::buffer::Buffer;
use crate::device::Device;
use crate::error::{KernelError, Result};
use crate::event::{EventId, EventKind, EventRegistry};
use crate::fault::FaultSite;
use crate::kernel::Kernel;
use crate::race::RaceDetector;
use crate::scheduling::LaunchConfig;
use ocelot_trace::{MetricsRegistry, TraceEventKind, TraceHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

enum PendingOp {
    Kernel {
        kernel: Arc<dyn Kernel>,
        launch: LaunchConfig,
        wait: Vec<EventId>,
        event: EventId,
    },
    Write {
        /// Held to keep the buffer alive (and device-resident) until the
        /// scheduled transfer has executed.
        #[allow(dead_code)]
        buffer: Buffer,
        bytes: usize,
        wait: Vec<EventId>,
        event: EventId,
    },
    Read {
        /// Held to keep the buffer alive (and device-resident) until the
        /// scheduled transfer has executed.
        #[allow(dead_code)]
        buffer: Buffer,
        bytes: usize,
        wait: Vec<EventId>,
        event: EventId,
    },
    Marker {
        wait: Vec<EventId>,
        event: EventId,
    },
}

impl PendingOp {
    fn event(&self) -> EventId {
        match self {
            PendingOp::Kernel { event, .. }
            | PendingOp::Write { event, .. }
            | PendingOp::Read { event, .. }
            | PendingOp::Marker { event, .. } => *event,
        }
    }

    fn wait_list(&self) -> &[EventId] {
        match self {
            PendingOp::Kernel { wait, .. }
            | PendingOp::Write { wait, .. }
            | PendingOp::Read { wait, .. }
            | PendingOp::Marker { wait, .. } => wait,
        }
    }
}

/// Statistics of a single [`Queue::flush`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Number of kernel invocations executed.
    pub kernels: usize,
    /// Number of host/device transfers executed.
    pub transfers: usize,
    /// Wall-clock nanoseconds spent executing on the host.
    pub host_ns: u64,
    /// Modeled nanoseconds on the device (kernels + transfers).
    pub modeled_ns: u64,
    /// Bytes moved host → device.
    pub bytes_to_device: u64,
    /// Bytes moved device → host.
    pub bytes_from_device: u64,
}

impl FlushStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &FlushStats) {
        self.kernels += other.kernels;
        self.transfers += other.transfers;
        self.host_ns += other.host_ns;
        self.modeled_ns += other.modeled_ns;
        self.bytes_to_device += other.bytes_to_device;
        self.bytes_from_device += other.bytes_from_device;
    }

    /// The time the benchmarks should report for the device that produced
    /// these stats: wall-clock for real (unified-memory CPU) devices,
    /// modeled time for the simulated discrete GPU.
    pub fn reported_ns(&self, unified_memory: bool) -> u64 {
        if unified_memory {
            self.host_ns
        } else {
            self.modeled_ns
        }
    }

    /// Projects these statistics into a [`MetricsRegistry`] under
    /// `<prefix>.kernels`, `<prefix>.transfers`, `<prefix>.host_ns`,
    /// `<prefix>.modeled_ns`, `<prefix>.bytes_to_device` and
    /// `<prefix>.bytes_from_device`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.kernels"), self.kernels as u64);
        registry.set_counter(&format!("{prefix}.transfers"), self.transfers as u64);
        registry.set_counter(&format!("{prefix}.host_ns"), self.host_ns);
        registry.set_counter(&format!("{prefix}.modeled_ns"), self.modeled_ns);
        registry.set_counter(&format!("{prefix}.bytes_to_device"), self.bytes_to_device);
        registry.set_counter(&format!("{prefix}.bytes_from_device"), self.bytes_from_device);
    }
}

/// Per-kernel profiling record (enable with [`Queue::enable_profiling`]).
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Wall-clock nanoseconds on the host.
    pub host_ns: u64,
    /// Modeled nanoseconds on the device.
    pub modeled_ns: u64,
    /// Number of work-groups launched.
    pub num_groups: usize,
    /// Work-items per group.
    pub group_size: usize,
    /// Logical problem size.
    pub n: usize,
}

/// A lazily evaluated, in-order command queue bound to one [`Device`].
///
/// Queue handles (`Arc<Queue>`) are `Send + Sync`: a multi-query scheduler
/// may observe (`pending_ops`, `flush_count`, `total_stats`) and drain
/// (`flush`) session queues from other threads. Flushing executes on the
/// calling thread, in submission order, exactly as before.
pub struct Queue {
    device: Device,
    events: Arc<EventRegistry>,
    pending: Mutex<Vec<PendingOp>>,
    profiling: AtomicBool,
    profiles: Mutex<Vec<KernelProfile>>,
    totals: Mutex<FlushStats>,
    flushes: AtomicU64,
    trace: TraceHandle,
    race: RaceDetector,
}

impl Queue {
    pub(crate) fn new(device: Device) -> Queue {
        Queue {
            device,
            events: Arc::new(EventRegistry::new()),
            pending: Mutex::new(Vec::new()),
            profiling: AtomicBool::new(false),
            profiles: Mutex::new(Vec::new()),
            totals: Mutex::new(FlushStats::default()),
            flushes: AtomicU64::new(0),
            trace: TraceHandle::new(),
            race: RaceDetector::new(),
        }
    }

    /// The queue's race-detector shadow state (see [`crate::race`]).
    /// Disarmed by default; arm it to record kernel access declarations at
    /// enqueue and check the buffer phase contract at flush.
    pub fn race(&self) -> &RaceDetector {
        &self.race
    }

    /// The queue's trace attachment point: attach a shared
    /// [`ocelot_trace::TraceSink`] and every flush emits per-kernel,
    /// per-transfer and per-flush events (see the `ocelot_trace` module
    /// docs for the emission contract). Detached by default — the disabled
    /// cost is one relaxed atomic load per flush.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The device this queue schedules onto.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The queue's event registry.
    pub fn events(&self) -> &EventRegistry {
        &self.events
    }

    /// Number of operations waiting to be flushed.
    pub fn pending_ops(&self) -> usize {
        self.pending.lock().len()
    }

    /// Enables per-kernel profiling.
    pub fn enable_profiling(&self) {
        self.profiling.store(true, Ordering::Relaxed);
    }

    /// Snapshot of the collected kernel profiles.
    pub fn profiles(&self) -> Vec<KernelProfile> {
        self.profiles.lock().clone()
    }

    /// Accumulated statistics over every flush of this queue.
    pub fn total_stats(&self) -> FlushStats {
        *self.totals.lock()
    }

    /// Number of *effective* flushes so far: [`Queue::flush`] calls that
    /// actually executed at least one pending operation. Calls on an empty
    /// queue are not counted. This is the observability hook behind the
    /// sync-boundary regression tests — a lazy pipeline that only
    /// synchronises at its final `.get()`/`.read()` increments this exactly
    /// once.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    fn check_wait_list(&self, wait: &[EventId]) -> Result<()> {
        for id in wait {
            if !self.events.contains(*id) {
                return Err(KernelError::UnknownEvent(id.0));
            }
        }
        Ok(())
    }

    /// Schedules a kernel invocation. Returns the event tied to it.
    pub fn enqueue_kernel(
        &self,
        kernel: Arc<dyn Kernel>,
        launch: LaunchConfig,
        wait: &[EventId],
    ) -> Result<EventId> {
        launch.validate()?;
        self.check_wait_list(wait)?;
        // Faults fire at submission time — before the event is issued — so
        // a failed launch never leaves a dangling incomplete event for a
        // later wait-list to trip over.
        self.device.fault_preflight(FaultSite::KernelLaunch)?;
        let event = self.events.issue(EventKind::Kernel(kernel.name().to_string()));
        if self.race.armed() {
            self.race.record(&*kernel, &launch, wait, event);
        }
        self.pending.lock().push(PendingOp::Kernel { kernel, launch, wait: wait.to_vec(), event });
        Ok(event)
    }

    /// Schedules a host-to-device transfer of `buffer`.
    ///
    /// On unified-memory devices this is a zero-copy no-op that only records
    /// an event; on the simulated GPU it accounts PCIe transfer time and
    /// bytes.
    pub fn enqueue_write(&self, buffer: &Buffer, wait: &[EventId]) -> Result<EventId> {
        self.enqueue_write_prefix(buffer, buffer.len(), wait)
    }

    /// Schedules a host-to-device transfer of the first `words` words of
    /// `buffer` (like `clEnqueueWriteBuffer` with an explicit size). Uploads
    /// into pool-class-rounded buffers use this so only the logical prefix
    /// is charged, keeping the transfer accounting exact.
    pub fn enqueue_write_prefix(
        &self,
        buffer: &Buffer,
        words: usize,
        wait: &[EventId],
    ) -> Result<EventId> {
        self.check_wait_list(wait)?;
        self.device.fault_preflight(FaultSite::Transfer)?;
        let event = self.events.issue(EventKind::WriteBuffer);
        self.pending.lock().push(PendingOp::Write {
            buffer: buffer.clone(),
            bytes: words.min(buffer.len()) * 4,
            wait: wait.to_vec(),
            event,
        });
        Ok(event)
    }

    /// Schedules a device-to-host transfer of `buffer`.
    pub fn enqueue_read(&self, buffer: &Buffer, wait: &[EventId]) -> Result<EventId> {
        self.enqueue_read_prefix(buffer, buffer.len(), wait)
    }

    /// Schedules a device-to-host transfer of the first `words` words of
    /// `buffer` (like `clEnqueueReadBuffer` with an explicit size). Deferred
    /// readbacks use this so capacity-allocated columns are only charged for
    /// their logical prefix — and one-word scalars for four bytes.
    pub fn enqueue_read_prefix(
        &self,
        buffer: &Buffer,
        words: usize,
        wait: &[EventId],
    ) -> Result<EventId> {
        self.check_wait_list(wait)?;
        self.device.fault_preflight(FaultSite::Transfer)?;
        let event = self.events.issue(EventKind::ReadBuffer);
        self.pending.lock().push(PendingOp::Read {
            buffer: buffer.clone(),
            bytes: words.min(buffer.len()) * 4,
            wait: wait.to_vec(),
            event,
        });
        Ok(event)
    }

    /// Schedules a marker that completes once every event in `wait` has
    /// completed — the building block of the explicit `sync` operator.
    pub fn enqueue_marker(&self, wait: &[EventId]) -> Result<EventId> {
        self.check_wait_list(wait)?;
        let event = self.events.issue(EventKind::Marker);
        self.pending.lock().push(PendingOp::Marker { wait: wait.to_vec(), event });
        Ok(event)
    }

    /// Executes every pending operation in submission order and returns the
    /// statistics of this flush.
    pub fn flush(&self) -> Result<FlushStats> {
        let ops: Vec<PendingOp> = std::mem::take(&mut *self.pending.lock());
        let effective = !ops.is_empty();
        if effective {
            // A lost device executes nothing: the pending batch is dropped
            // (the plan that scheduled it is being unwound for failover) and
            // the caller sees the sticky loss. Empty flushes stay harmless
            // no-ops so teardown paths never trip here.
            if self.device.is_lost() {
                return Err(KernelError::DeviceLost);
            }
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        let traced = self.trace.armed() && effective;
        let flush_start = traced.then(Instant::now);
        // Phase analysis runs over the shadow batch *before* execution (the
        // event graph is fully known here); bitmap claims are checked after
        // their producer completes, below.
        let bitmap_claims =
            if self.race.armed() { self.race.analyze_batch(&self.events) } else { Vec::new() };
        let mut stats = FlushStats::default();
        for op in ops {
            // Wait-list sanity: in-order execution means every dependency
            // issued by this queue has either completed in a previous flush
            // or earlier in this loop.
            for dep in op.wait_list() {
                if !self.events.is_complete(*dep) {
                    return Err(KernelError::IncompleteDependency(dep.0));
                }
            }
            let event = op.event();
            match op {
                PendingOp::Kernel { kernel, launch, .. } => {
                    let report = self.device.execute_kernel(&kernel, &launch);
                    self.events.complete(event, report.host_ns, report.modeled_ns);
                    for (claim_event, producer, claim) in &bitmap_claims {
                        if *claim_event == event {
                            self.race.check_bitmap(producer, claim);
                        }
                    }
                    stats.kernels += 1;
                    stats.host_ns += report.host_ns;
                    stats.modeled_ns += report.modeled_ns;
                    if self.profiling.load(Ordering::Relaxed) {
                        self.profiles.lock().push(KernelProfile {
                            name: kernel.name().to_string(),
                            host_ns: report.host_ns,
                            modeled_ns: report.modeled_ns,
                            num_groups: launch.num_groups,
                            group_size: launch.group_size,
                            n: launch.n,
                        });
                    }
                    if traced {
                        self.trace.emit(|| TraceEventKind::Kernel {
                            kernel: kernel.name().to_string(),
                            host_ns: report.host_ns,
                            modeled_ns: report.modeled_ns,
                        });
                    }
                }
                PendingOp::Write { bytes, .. } => {
                    let ns = self.device.transfer_ns(bytes);
                    self.events.complete(event, 0, ns);
                    stats.transfers += 1;
                    stats.modeled_ns += ns;
                    let charged = if self.device.is_unified() { 0 } else { bytes as u64 };
                    stats.bytes_to_device += charged;
                    if traced {
                        self.trace.emit(|| TraceEventKind::Transfer {
                            to_device: true,
                            bytes: charged,
                            modeled_ns: ns,
                        });
                    }
                }
                PendingOp::Read { bytes, .. } => {
                    let ns = self.device.transfer_ns(bytes);
                    self.events.complete(event, 0, ns);
                    stats.transfers += 1;
                    stats.modeled_ns += ns;
                    let charged = if self.device.is_unified() { 0 } else { bytes as u64 };
                    stats.bytes_from_device += charged;
                    if traced {
                        self.trace.emit(|| TraceEventKind::Transfer {
                            to_device: false,
                            bytes: charged,
                            modeled_ns: ns,
                        });
                    }
                }
                PendingOp::Marker { .. } => {
                    self.events.complete(event, 0, 0);
                }
            }
        }
        if let Some(start) = flush_start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            self.trace.emit_with(|sink| ocelot_trace::TraceEvent {
                ts_ns: sink.now_ns().saturating_sub(dur_ns),
                dur_ns,
                pid: 0,
                tid: 0,
                kind: TraceEventKind::Flush {
                    kernels: stats.kernels as u64,
                    transfers: stats.transfers as u64,
                    host_ns: stats.host_ns,
                },
            });
        }
        self.totals.lock().merge(&stats);
        Ok(stats)
    }

    /// Flushes and additionally asserts that every issued event has
    /// completed — the moral equivalent of `clFinish`.
    pub fn finish(&self) -> Result<FlushStats> {
        self.flush()
    }
}

// Compile-time proof of the scheduler contract above: queue handles must
// stay shareable across threads. (All fields are atomics, mutexes or
// `Send + Sync` trait objects; this assertion keeps that from regressing.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Queue>();
};

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue")
            .field("device", &self.device)
            .field("pending", &self.pending_ops())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::gpu_sim::GpuConfig;
    use crate::kernel::{Kernel, WorkGroupCtx};

    struct Increment {
        buf: Buffer,
    }

    impl Kernel for Increment {
        fn name(&self) -> &str {
            "increment"
        }
        fn run_group(&self, group: &mut WorkGroupCtx) {
            for item in group.items() {
                for idx in item.assigned() {
                    self.buf.set_i32(idx, self.buf.get_i32(idx) + 1);
                }
            }
        }
    }

    #[test]
    fn lazy_execution_until_flush() {
        let device = Device::cpu_multicore_with(2);
        let buf = device.alloc_from_i32(&[0; 100], "b").unwrap();
        let queue = device.create_queue();
        let launch = device.launch_config(100);
        let ev =
            queue.enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch, &[]).unwrap();

        // Nothing has run yet.
        assert_eq!(queue.pending_ops(), 1);
        assert!(!queue.events().is_complete(ev));
        assert_eq!(buf.get_i32(0), 0);

        let stats = queue.flush().unwrap();
        assert_eq!(stats.kernels, 1);
        assert!(queue.events().is_complete(ev));
        assert_eq!(buf.get_i32(0), 1);
        assert_eq!(queue.pending_ops(), 0);
    }

    #[test]
    fn wait_lists_chain_operations() {
        let device = Device::cpu_sequential();
        let buf = device.alloc_from_i32(&[0; 10], "b").unwrap();
        let queue = device.create_queue();
        let launch = device.launch_config(10);
        let first = queue
            .enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch.clone(), &[])
            .unwrap();
        let second = queue
            .enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch, &[first])
            .unwrap();
        let marker = queue.enqueue_marker(&[second]).unwrap();
        queue.flush().unwrap();
        assert!(queue.events().is_complete(marker));
        assert_eq!(buf.get_i32(5), 2);
    }

    #[test]
    fn unknown_wait_event_is_rejected() {
        let device = Device::cpu_sequential();
        let queue = device.create_queue();
        let err = queue.enqueue_marker(&[EventId(4242)]).unwrap_err();
        assert_eq!(err, KernelError::UnknownEvent(4242));
    }

    #[test]
    fn invalid_launch_is_rejected() {
        let device = Device::cpu_sequential();
        let buf = device.alloc(4, "b").unwrap();
        let queue = device.create_queue();
        let bad = LaunchConfig::new(0, 1, 4, crate::AccessPattern::Contiguous);
        let err = queue.enqueue_kernel(Arc::new(Increment { buf }), bad, &[]).unwrap_err();
        assert!(matches!(err, KernelError::InvalidLaunchConfig(_)));
    }

    #[test]
    fn gpu_transfers_are_accounted() {
        let gpu = Device::simulated_gpu(GpuConfig::default());
        let buf = gpu.alloc(1024, "b").unwrap();
        let queue = gpu.create_queue();
        queue.enqueue_write(&buf, &[]).unwrap();
        queue.enqueue_read(&buf, &[]).unwrap();
        let stats = queue.flush().unwrap();
        assert_eq!(stats.transfers, 2);
        assert_eq!(stats.bytes_to_device, 4096);
        assert_eq!(stats.bytes_from_device, 4096);
        assert!(stats.modeled_ns > 0);
    }

    #[test]
    fn cpu_transfers_are_zero_copy() {
        let cpu = Device::cpu_multicore_with(2);
        let buf = cpu.alloc(1024, "b").unwrap();
        let queue = cpu.create_queue();
        queue.enqueue_write(&buf, &[]).unwrap();
        let stats = queue.flush().unwrap();
        assert_eq!(stats.bytes_to_device, 0);
        assert_eq!(stats.modeled_ns, 0);
    }

    #[test]
    fn profiling_collects_kernel_names() {
        let device = Device::cpu_sequential();
        let buf = device.alloc_from_i32(&[0; 16], "b").unwrap();
        let queue = device.create_queue();
        queue.enable_profiling();
        let launch = device.launch_config(16);
        queue.enqueue_kernel(Arc::new(Increment { buf }), launch, &[]).unwrap();
        queue.flush().unwrap();
        let profiles = queue.profiles();
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].name, "increment");
        assert_eq!(profiles[0].n, 16);
    }

    #[test]
    fn totals_accumulate_across_flushes() {
        let device = Device::cpu_sequential();
        let buf = device.alloc_from_i32(&[0; 8], "b").unwrap();
        let queue = device.create_queue();
        for _ in 0..3 {
            let launch = device.launch_config(8);
            queue.enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch, &[]).unwrap();
            queue.flush().unwrap();
        }
        assert_eq!(queue.total_stats().kernels, 3);
        assert_eq!(buf.get_i32(0), 3);
    }

    #[test]
    fn flush_count_ignores_empty_flushes() {
        let device = Device::cpu_sequential();
        let buf = device.alloc_from_i32(&[0; 8], "b").unwrap();
        let queue = device.create_queue();
        assert_eq!(queue.flush_count(), 0);
        queue.flush().unwrap();
        assert_eq!(queue.flush_count(), 0, "empty flush is not counted");
        let launch = device.launch_config(8);
        queue
            .enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch.clone(), &[])
            .unwrap();
        queue.enqueue_kernel(Arc::new(Increment { buf }), launch, &[]).unwrap();
        queue.flush().unwrap();
        assert_eq!(queue.flush_count(), 1, "one effective flush for two pending ops");
        queue.flush().unwrap();
        assert_eq!(queue.flush_count(), 1);
    }

    #[test]
    fn traced_flushes_emit_kernel_transfer_and_flush_events() {
        let gpu = Device::simulated_gpu(GpuConfig::default());
        let buf = gpu.alloc_from_i32(&[0; 64], "b").unwrap();
        let queue = gpu.create_queue();
        let sink = Arc::new(ocelot_trace::TraceSink::new());
        queue.trace().attach(Arc::clone(&sink));
        queue.enqueue_write(&buf, &[]).unwrap();
        let launch = gpu.launch_config(64);
        queue.enqueue_kernel(Arc::new(Increment { buf: buf.clone() }), launch, &[]).unwrap();
        queue.enqueue_read(&buf, &[]).unwrap();
        queue.flush().unwrap();
        queue.flush().unwrap(); // empty: must not emit a flush event
        use ocelot_trace::TraceEventKind as K;
        assert_eq!(sink.count(|e| matches!(e.kind, K::Kernel { .. })), 1);
        assert_eq!(sink.count(|e| matches!(e.kind, K::Transfer { .. })), 2);
        assert_eq!(
            sink.count(|e| matches!(e.kind, K::Flush { .. })) as u64,
            queue.flush_count(),
            "flush events mirror the effective flush count"
        );
        let events = sink.events();
        let flush = events
            .iter()
            .find_map(|e| match &e.kind {
                K::Flush { kernels, transfers, .. } => Some((*kernels, *transfers, e.dur_ns)),
                _ => None,
            })
            .unwrap();
        assert_eq!((flush.0, flush.1), (1, 2));
        assert!(flush.2 > 0, "flush event is a span");
        queue.trace().detach();
        let before = sink.len();
        let launch = gpu.launch_config(64);
        queue.enqueue_kernel(Arc::new(Increment { buf }), launch, &[]).unwrap();
        queue.flush().unwrap();
        assert_eq!(sink.len(), before, "detached queue emits nothing");
    }

    struct DeclaredWriter {
        buf: Buffer,
        range: std::ops::Range<usize>,
    }

    impl Kernel for DeclaredWriter {
        fn name(&self) -> &str {
            "declared_writer"
        }
        fn run_group(&self, _group: &mut WorkGroupCtx) {}
        fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<crate::race::KernelAccesses> {
            Some(crate::race::KernelAccesses::of(vec![crate::race::BufferAccess::slice_write(
                &self.buf,
                self.range.clone(),
            )]))
        }
    }

    #[test]
    fn race_detector_flags_unordered_overlap_and_accepts_ordered_writes() {
        let device = Device::cpu_sequential();
        let buf = device.alloc(64, "shared").unwrap();
        let queue = device.create_queue();
        queue.race().arm();
        let launch = device.launch_config(64);

        // Two event-unordered kernels with overlapping tier-2 writes.
        let a = DeclaredWriter { buf: buf.clone(), range: 0..40 };
        let b = DeclaredWriter { buf: buf.clone(), range: 32..64 };
        queue.enqueue_kernel(Arc::new(a), launch.clone(), &[]).unwrap();
        queue.enqueue_kernel(Arc::new(b), launch.clone(), &[]).unwrap();
        queue.flush().unwrap();
        let diags = queue.race().take_diagnostics();
        assert_eq!(diags.len(), 1, "overlap must surface as a diagnostic, not a panic");
        assert!(matches!(diags[0], crate::race::RaceDiagnostic::WriteWriteOverlap { .. }));

        // The same pair ordered by an event is clean.
        let a = DeclaredWriter { buf: buf.clone(), range: 0..40 };
        let b = DeclaredWriter { buf: buf.clone(), range: 32..64 };
        let first = queue.enqueue_kernel(Arc::new(a), launch.clone(), &[]).unwrap();
        queue.enqueue_kernel(Arc::new(b), launch.clone(), &[first]).unwrap();
        queue.flush().unwrap();
        assert!(queue.race().diagnostics().is_empty());

        // Disjoint unordered writes are clean too.
        let a = DeclaredWriter { buf: buf.clone(), range: 0..32 };
        let b = DeclaredWriter { buf, range: 32..64 };
        queue.enqueue_kernel(Arc::new(a), launch.clone(), &[]).unwrap();
        queue.enqueue_kernel(Arc::new(b), launch, &[]).unwrap();
        queue.flush().unwrap();
        assert!(queue.race().diagnostics().is_empty());
        let stats = queue.race().stats();
        assert_eq!(stats.kernels_observed, 6);
        assert_eq!(stats.kernels_declared, 6);
        assert_eq!(stats.violations, 1);
        queue.race().disarm();
    }

    #[test]
    fn flush_stats_project_into_the_registry() {
        let stats = FlushStats {
            kernels: 2,
            transfers: 3,
            host_ns: 10,
            modeled_ns: 20,
            bytes_to_device: 100,
            bytes_from_device: 200,
        };
        let mut reg = ocelot_trace::MetricsRegistry::new();
        stats.register_metrics("ocelot.queue", &mut reg);
        assert_eq!(reg.counter("ocelot.queue.kernels"), Some(2));
        assert_eq!(reg.counter("ocelot.queue.bytes_from_device"), Some(200));
    }

    #[test]
    fn reported_ns_selects_by_memory_model() {
        let stats = FlushStats { host_ns: 10, modeled_ns: 99, ..Default::default() };
        assert_eq!(stats.reported_ns(true), 10);
        assert_eq!(stats.reported_ns(false), 99);
    }
}
