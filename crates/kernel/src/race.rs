//! Device-phase race detector: shadow state for the two-tier buffer
//! contract.
//!
//! The buffer module documents a contract it cannot enforce: tier-1 access
//! through the atomic [`crate::Buffer::cells`] view is always legal, while
//! tier-2 slice views ([`crate::Buffer::chunk_mut`] /
//! [`crate::Buffer::words_mut`]) are only sound when (a) concurrently
//! written ranges are pairwise disjoint and (b) writers are ordered before
//! readers by the queue's event graph. Today's in-order flush makes every
//! submission schedule *happen* to execute safely — but the contract must
//! hold for any topological order of the event graph, or the planned
//! multi-core scheduler will turn latent violations into real data races.
//!
//! The [`RaceDetector`] checks the contract at the only place it is
//! observable: the queue. Kernels opt in by overriding
//! [`crate::Kernel::declared_accesses`] with the buffer ranges they touch;
//! the queue records a [`RecordedKernel`] per armed enqueue and, at flush,
//! analyses the batch pairwise:
//!
//! * two kernels are *ordered* when one's event is reachable from the
//!   other's wait list (events completed in earlier flushes are ordered
//!   before everything in the batch);
//! * for every **unordered** pair, a tier-2 write overlapping any access of
//!   the other kernel on the same buffer raises a typed
//!   [`RaceDiagnostic`] — [`RaceDiagnostic::WriteWriteOverlap`] when both
//!   sides write, [`RaceDiagnostic::UnorderedWriteRead`] otherwise;
//! * a kernel that declares a [`BitmapClaim`] is checked *after it
//!   executes*: every bit at position `>= rows` in its bitmap's last
//!   partial word must be zero ([`RaceDiagnostic::BitmapPadding`]), the
//!   invariant `popcount`/`combine` consumers rely on.
//!
//! Violations are collected, never panicked on: the detector is an oracle
//! for tests and CI, not a crash box. Undeclared kernels are skipped
//! conservatively (no false positives from partial knowledge). Disarmed —
//! the default — the detector costs one relaxed atomic load per enqueue
//! and one per flush, which is what lets it stay compiled into release
//! builds (the fault layer made the same trade).

use crate::buffer::Buffer;
use crate::event::{EventId, EventRegistry};
use crate::kernel::Kernel;
use crate::scheduling::LaunchConfig;
use ocelot_trace::MetricsRegistry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Cap on retained diagnostics: an armed detector left running across a
/// large workload must not grow without bound on a hot misdeclaration.
const MAX_DIAGNOSTICS: usize = 256;

/// Which buffer view a declared access uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessTier {
    /// Tier-1: the shared `&[AtomicU32]` cell view. Always legal; only
    /// conflicts with an overlapping tier-2 write.
    Cells,
    /// Tier-2: a `chunk_mut`/`words_mut` slice view. Requires disjointness
    /// and event ordering.
    Slice,
}

/// Read or write, from the kernel's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// The kernel only loads from the range.
    Read,
    /// The kernel stores to the range.
    Write,
}

/// One declared access: a word range of one buffer, with tier and mode.
#[derive(Debug, Clone)]
pub struct BufferAccess {
    /// Identity of the accessed buffer ([`Buffer::id`]).
    pub buffer: u64,
    /// Buffer label, carried for diagnostics.
    pub label: String,
    /// Start word (inclusive).
    pub start: usize,
    /// End word (exclusive).
    pub end: usize,
    /// Buffer view used.
    pub tier: AccessTier,
    /// Read or write.
    pub mode: AccessMode,
}

impl BufferAccess {
    fn new(
        buf: &Buffer,
        range: std::ops::Range<usize>,
        tier: AccessTier,
        mode: AccessMode,
    ) -> Self {
        BufferAccess {
            buffer: buf.id(),
            label: buf.label().to_string(),
            start: range.start,
            end: range.end.min(buf.len()),
            tier,
            mode,
        }
    }

    /// A tier-1 (atomic cells) read of `range`.
    pub fn cells_read(buf: &Buffer, range: std::ops::Range<usize>) -> Self {
        Self::new(buf, range, AccessTier::Cells, AccessMode::Read)
    }

    /// A tier-1 (atomic cells) write of `range`.
    pub fn cells_write(buf: &Buffer, range: std::ops::Range<usize>) -> Self {
        Self::new(buf, range, AccessTier::Cells, AccessMode::Write)
    }

    /// A tier-2 (slice view) read of `range`.
    pub fn slice_read(buf: &Buffer, range: std::ops::Range<usize>) -> Self {
        Self::new(buf, range, AccessTier::Slice, AccessMode::Read)
    }

    /// A tier-2 (slice view) write of `range`.
    pub fn slice_write(buf: &Buffer, range: std::ops::Range<usize>) -> Self {
        Self::new(buf, range, AccessTier::Slice, AccessMode::Write)
    }

    fn overlaps(&self, other: &BufferAccess) -> bool {
        self.buffer == other.buffer && self.start < other.end && other.start < self.end
    }

    /// Whether this access racing `other` unordered would violate the
    /// buffer contract: at least one side is a write, at least one side is
    /// a tier-2 slice view, and the word ranges overlap. Two tier-1
    /// accesses never conflict (the cells are atomic).
    fn conflicts_with(&self, other: &BufferAccess) -> bool {
        if !self.overlaps(other) {
            return false;
        }
        let some_write = self.mode == AccessMode::Write || other.mode == AccessMode::Write;
        let some_slice = self.tier == AccessTier::Slice || other.tier == AccessTier::Slice;
        some_write && some_slice
    }
}

/// A declaration that the kernel produces a selection bitmap over `rows`
/// logical rows in `buffer`. Checked when the kernel completes: bits at
/// positions `>= rows` of the last partial word must be zero.
#[derive(Debug, Clone)]
pub struct BitmapClaim {
    /// The bitmap buffer (held to inspect its words after execution).
    pub buffer: Buffer,
    /// Logical row count the bitmap covers.
    pub rows: usize,
}

/// The full access declaration of one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct KernelAccesses {
    /// Declared buffer ranges.
    pub accesses: Vec<BufferAccess>,
    /// Optional bitmap-producer claim.
    pub bitmap: Option<BitmapClaim>,
}

impl KernelAccesses {
    /// A declaration from a list of accesses.
    pub fn of(accesses: Vec<BufferAccess>) -> Self {
        KernelAccesses { accesses, bitmap: None }
    }

    /// Adds a bitmap-producer claim (builder style).
    pub fn with_bitmap(mut self, buffer: &Buffer, rows: usize) -> Self {
        self.bitmap = Some(BitmapClaim { buffer: buffer.clone(), rows });
        self
    }
}

/// A detected violation of the buffer phase contract. Collected by the
/// [`RaceDetector`]; never panicked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceDiagnostic {
    /// Two event-unordered kernels both write overlapping words of the
    /// same buffer through at least one tier-2 view.
    WriteWriteOverlap {
        /// Buffer identity.
        buffer: u64,
        /// Buffer label.
        label: String,
        /// First kernel (submission order) and its word range.
        first: String,
        /// Word range `[start, end)` written by `first`.
        first_range: (usize, usize),
        /// Second kernel.
        second: String,
        /// Word range `[start, end)` written by `second`.
        second_range: (usize, usize),
    },
    /// A tier-2 write and an overlapping read are not ordered by events:
    /// the reader is not guaranteed to observe the writer under an
    /// out-of-order (multi-core) schedule.
    UnorderedWriteRead {
        /// Buffer identity.
        buffer: u64,
        /// Buffer label.
        label: String,
        /// Writing kernel.
        writer: String,
        /// Word range `[start, end)` written.
        write_range: (usize, usize),
        /// Reading kernel.
        reader: String,
        /// Word range `[start, end)` read.
        read_range: (usize, usize),
    },
    /// A declared bitmap producer completed with non-zero bits beyond the
    /// logical row count in its last partial word.
    BitmapPadding {
        /// Buffer identity.
        buffer: u64,
        /// Buffer label.
        label: String,
        /// The producing kernel.
        producer: String,
        /// Logical rows the bitmap covers.
        rows: usize,
        /// Index of the offending word.
        word: usize,
        /// The stray high bits (already masked to the padding region).
        stray_bits: u32,
    },
}

impl std::fmt::Display for RaceDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceDiagnostic::WriteWriteOverlap {
                buffer,
                label,
                first,
                first_range,
                second,
                second_range,
            } => write!(
                f,
                "write/write overlap on buffer #{buffer} `{label}`: `{first}` writes \
                 [{}, {}) while event-unordered `{second}` writes [{}, {})",
                first_range.0, first_range.1, second_range.0, second_range.1
            ),
            RaceDiagnostic::UnorderedWriteRead {
                buffer,
                label,
                writer,
                write_range,
                reader,
                read_range,
            } => write!(
                f,
                "unordered write/read on buffer #{buffer} `{label}`: `{writer}` writes \
                 [{}, {}) but `{reader}` reads [{}, {}) without an event ordering them",
                write_range.0, write_range.1, read_range.0, read_range.1
            ),
            RaceDiagnostic::BitmapPadding { buffer, label, producer, rows, word, stray_bits } => {
                write!(
                    f,
                    "bitmap padding violated on buffer #{buffer} `{label}`: producer \
                     `{producer}` left bits {stray_bits:#010x} set beyond row {rows} in word {word}"
                )
            }
        }
    }
}

/// Detector counters — the assertion surface for tests and the benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Kernels enqueued while the detector was armed.
    pub kernels_observed: u64,
    /// Of those, kernels that declared their accesses.
    pub kernels_declared: u64,
    /// Unordered kernel pairs whose access sets were compared.
    pub pairs_checked: u64,
    /// Bitmap-producer completions checked.
    pub bitmap_checks: u64,
    /// Total diagnostics raised.
    pub violations: u64,
}

impl RaceStats {
    /// Projects these counters into a [`MetricsRegistry`] under
    /// `<prefix>.kernels_observed`, `<prefix>.kernels_declared`,
    /// `<prefix>.pairs_checked`, `<prefix>.bitmap_checks` and
    /// `<prefix>.violations`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.kernels_observed"), self.kernels_observed);
        registry.set_counter(&format!("{prefix}.kernels_declared"), self.kernels_declared);
        registry.set_counter(&format!("{prefix}.pairs_checked"), self.pairs_checked);
        registry.set_counter(&format!("{prefix}.bitmap_checks"), self.bitmap_checks);
        registry.set_counter(&format!("{prefix}.violations"), self.violations);
    }
}

/// Shadow record of one armed kernel enqueue.
struct RecordedKernel {
    name: String,
    event: EventId,
    wait: Vec<EventId>,
    declared: Option<KernelAccesses>,
}

/// The queue's race-detector shadow state. Obtain via `Queue::race()`;
/// disarmed by default.
pub struct RaceDetector {
    armed: AtomicBool,
    recorded: Mutex<Vec<RecordedKernel>>,
    diagnostics: Mutex<Vec<RaceDiagnostic>>,
    stats: Mutex<RaceStats>,
}

impl RaceDetector {
    pub(crate) fn new() -> RaceDetector {
        RaceDetector {
            armed: AtomicBool::new(false),
            recorded: Mutex::new(Vec::new()),
            diagnostics: Mutex::new(Vec::new()),
            stats: Mutex::new(RaceStats::default()),
        }
    }

    /// Whether the detector is recording. One relaxed load — this is the
    /// entire disarmed cost at each enqueue/flush site.
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Starts recording kernel access sets.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Stops recording and drops any not-yet-flushed shadow records.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
        self.recorded.lock().clear();
    }

    /// Snapshot of the collected diagnostics.
    pub fn diagnostics(&self) -> Vec<RaceDiagnostic> {
        self.diagnostics.lock().clone()
    }

    /// Drains the collected diagnostics.
    pub fn take_diagnostics(&self) -> Vec<RaceDiagnostic> {
        std::mem::take(&mut *self.diagnostics.lock())
    }

    /// Snapshot of the detector counters.
    pub fn stats(&self) -> RaceStats {
        *self.stats.lock()
    }

    /// Records one kernel enqueue (called by the queue when armed).
    pub(crate) fn record(
        &self,
        kernel: &dyn Kernel,
        launch: &LaunchConfig,
        wait: &[EventId],
        event: EventId,
    ) {
        let declared = kernel.declared_accesses(launch);
        let mut stats = self.stats.lock();
        stats.kernels_observed += 1;
        if declared.is_some() {
            stats.kernels_declared += 1;
        }
        drop(stats);
        self.recorded.lock().push(RecordedKernel {
            name: kernel.name().to_string(),
            event,
            wait: wait.to_vec(),
            declared,
        });
    }

    fn push_diagnostic(&self, diag: RaceDiagnostic) {
        self.stats.lock().violations += 1;
        let mut diags = self.diagnostics.lock();
        if diags.len() < MAX_DIAGNOSTICS {
            diags.push(diag);
        }
    }

    /// Takes the recorded batch for the flush that is about to execute and
    /// runs the pairwise phase analysis. Returns the bitmap claims keyed by
    /// completing event so the flush loop can verify them post-execution.
    pub(crate) fn analyze_batch(
        &self,
        events: &EventRegistry,
    ) -> Vec<(EventId, String, BitmapClaim)> {
        let batch: Vec<RecordedKernel> = std::mem::take(&mut *self.recorded.lock());
        if batch.is_empty() {
            return Vec::new();
        }

        // Transitive happens-before within the batch. Wait-list events that
        // are already complete belong to earlier flushes and order their
        // dependents after the whole history — only intra-batch edges need
        // the closure. `pred[i]` holds the batch indices ordered before
        // kernel `i`. In-order submission guarantees edges point backwards,
        // so one forward sweep computes the closure.
        let index_of = |event: EventId| batch.iter().position(|rk| rk.event == event);
        let mut pred: Vec<Vec<bool>> = Vec::with_capacity(batch.len());
        for (i, rk) in batch.iter().enumerate() {
            let mut row = vec![false; batch.len()];
            for dep in &rk.wait {
                if events.is_complete(*dep) {
                    continue;
                }
                if let Some(j) = index_of(*dep) {
                    if j < i {
                        row[j] = true;
                        for (k, reachable) in pred[j].iter().enumerate() {
                            if *reachable {
                                row[k] = true;
                            }
                        }
                    }
                }
            }
            pred.push(row);
        }

        let mut pairs_checked = 0u64;
        for i in 0..batch.len() {
            let Some(a) = &batch[i].declared else { continue };
            for j in (i + 1)..batch.len() {
                let Some(b) = &batch[j].declared else { continue };
                if pred[j][i] || pred[i][j] {
                    continue; // ordered by events — any schedule preserves it
                }
                pairs_checked += 1;
                for aa in &a.accesses {
                    for ba in &b.accesses {
                        if !aa.conflicts_with(ba) {
                            continue;
                        }
                        let diag = if aa.mode == AccessMode::Write && ba.mode == AccessMode::Write {
                            RaceDiagnostic::WriteWriteOverlap {
                                buffer: aa.buffer,
                                label: aa.label.clone(),
                                first: batch[i].name.clone(),
                                first_range: (aa.start, aa.end),
                                second: batch[j].name.clone(),
                                second_range: (ba.start, ba.end),
                            }
                        } else {
                            let (writer, wr, reader, rr) = if aa.mode == AccessMode::Write {
                                (&batch[i].name, aa, &batch[j].name, ba)
                            } else {
                                (&batch[j].name, ba, &batch[i].name, aa)
                            };
                            RaceDiagnostic::UnorderedWriteRead {
                                buffer: aa.buffer,
                                label: aa.label.clone(),
                                writer: writer.clone(),
                                write_range: (wr.start, wr.end),
                                reader: reader.clone(),
                                read_range: (rr.start, rr.end),
                            }
                        };
                        self.push_diagnostic(diag);
                    }
                }
            }
        }
        self.stats.lock().pairs_checked += pairs_checked;

        batch
            .into_iter()
            .filter_map(|rk| {
                let claim = rk.declared.and_then(|d| d.bitmap)?;
                Some((rk.event, rk.name, claim))
            })
            .collect()
    }

    /// Verifies a bitmap-producer claim after its kernel executed: every
    /// bit at position `>= rows` in the last partial word must be zero.
    pub(crate) fn check_bitmap(&self, producer: &str, claim: &BitmapClaim) {
        self.stats.lock().bitmap_checks += 1;
        let rows = claim.rows;
        if rows.is_multiple_of(32) {
            return; // no partial word, nothing the invariant constrains
        }
        let word = rows / 32;
        if word >= claim.buffer.len() {
            return;
        }
        let mask = !0u32 << (rows % 32);
        let stray = claim.buffer.get_u32(word) & mask;
        if stray != 0 {
            self.push_diagnostic(RaceDiagnostic::BitmapPadding {
                buffer: claim.buffer.id(),
                label: claim.buffer.label().to_string(),
                producer: producer.to_string(),
                rows,
                word,
                stray_bits: stray,
            });
        }
    }
}

impl std::fmt::Debug for RaceDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceDetector")
            .field("armed", &self.armed())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn overlap_and_conflict_rules() {
        let device = Device::cpu_sequential();
        let a = device.alloc(64, "a").unwrap();
        let b = device.alloc(64, "b").unwrap();

        let w1 = BufferAccess::slice_write(&a, 0..32);
        let w2 = BufferAccess::slice_write(&a, 16..48);
        let w3 = BufferAccess::slice_write(&a, 32..64);
        let other = BufferAccess::slice_write(&b, 0..64);
        assert!(w1.conflicts_with(&w2));
        assert!(!w1.conflicts_with(&w3), "touching ranges do not overlap");
        assert!(!w1.conflicts_with(&other), "different buffers never conflict");

        let r = BufferAccess::slice_read(&a, 0..8);
        assert!(w1.conflicts_with(&r));
        let cr = BufferAccess::cells_read(&a, 0..8);
        assert!(w1.conflicts_with(&cr), "tier-2 write vs tier-1 read still conflicts");
        let cw1 = BufferAccess::cells_write(&a, 0..8);
        let cw2 = BufferAccess::cells_write(&a, 4..12);
        assert!(!cw1.conflicts_with(&cw2), "tier-1 atomics never conflict with each other");
        assert!(!r.conflicts_with(&cr), "two reads never conflict");
    }

    #[test]
    fn access_range_is_clamped_to_the_buffer() {
        let device = Device::cpu_sequential();
        let a = device.alloc(8, "a").unwrap();
        let acc = BufferAccess::slice_write(&a, 0..1000);
        assert_eq!(acc.end, 8);
    }

    #[test]
    fn bitmap_claim_flags_stray_padding_bits() {
        let device = Device::cpu_sequential();
        let buf = device.alloc(2, "bm").unwrap();
        let detector = RaceDetector::new();

        // 40 rows: word 1 may only use bits 0..8.
        buf.set_u32(1, 0x0000_00ff);
        detector.check_bitmap("producer", &BitmapClaim { buffer: buf.clone(), rows: 40 });
        assert!(detector.diagnostics().is_empty());

        buf.set_u32(1, 0x0000_01ff); // bit 8 = row 40: out of range
        detector.check_bitmap("producer", &BitmapClaim { buffer: buf.clone(), rows: 40 });
        let diags = detector.take_diagnostics();
        assert_eq!(diags.len(), 1);
        match &diags[0] {
            RaceDiagnostic::BitmapPadding { rows, word, stray_bits, .. } => {
                assert_eq!((*rows, *word), (40, 1));
                assert_eq!(*stray_bits, 0x100);
            }
            other => panic!("unexpected diagnostic {other:?}"),
        }
        assert_eq!(detector.stats().bitmap_checks, 2);
        assert_eq!(detector.stats().violations, 1);
    }

    #[test]
    fn stats_project_into_the_registry() {
        let stats = RaceStats {
            kernels_observed: 5,
            kernels_declared: 4,
            pairs_checked: 3,
            bitmap_checks: 2,
            violations: 1,
        };
        let mut reg = ocelot_trace::MetricsRegistry::new();
        stats.register_metrics("ocelot.race", &mut reg);
        assert_eq!(reg.counter("ocelot.race.kernels_observed"), Some(5));
        assert_eq!(reg.counter("ocelot.race.violations"), Some(1));
    }
}
