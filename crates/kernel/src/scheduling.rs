//! Kernel launch configuration and the device-dependent scheduling heuristic
//! of paper §4.2.
//!
//! The paper found through trial-and-error that scheduling **one work-group
//! per core** with a group size of **4 × compute-units-per-core** gives
//! robust performance across architectures, and that the preferred memory
//! access pattern of the work-items (contiguous chunks on CPUs, strided /
//! coalesced interleaving on GPUs) should be injected by the driver rather
//! than chosen by the operator. [`default_launch`] implements exactly that
//! heuristic; everything the operators see is the resulting [`LaunchConfig`].

use crate::device::{AccessPattern, DeviceInfo};
use crate::error::{KernelError, Result};

/// Describes how a kernel is launched: how many work-groups, how many
/// work-items per group, the logical problem size `n`, the amount of local
/// memory per group and the access pattern the work-items should use when
/// walking their share of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of work-groups.
    pub num_groups: usize,
    /// Number of work-items per work-group.
    pub group_size: usize,
    /// Logical number of elements the kernel must cover.
    pub n: usize,
    /// 32-bit words of local memory allocated per work-group.
    pub local_mem_words: usize,
    /// Access pattern work-items use to partition `0..n` among themselves.
    pub access: AccessPattern,
}

impl LaunchConfig {
    /// Creates a launch configuration with no local memory.
    pub fn new(num_groups: usize, group_size: usize, n: usize, access: AccessPattern) -> Self {
        LaunchConfig { num_groups, group_size, n, local_mem_words: 0, access }
    }

    /// Returns a copy with `local_mem_words` words of local memory per group.
    pub fn with_local_words(mut self, local_mem_words: usize) -> Self {
        self.local_mem_words = local_mem_words;
        self
    }

    /// Returns a copy with a different logical problem size.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Returns a copy with a different group count.
    pub fn with_num_groups(mut self, num_groups: usize) -> Self {
        self.num_groups = num_groups;
        self
    }

    /// Returns a copy with a different group size.
    pub fn with_group_size(mut self, group_size: usize) -> Self {
        self.group_size = group_size;
        self
    }

    /// Total number of work-item invocations (`num_groups × group_size`).
    pub fn total_items(&self) -> usize {
        self.num_groups * self.group_size
    }

    /// Number of input elements each work-item processes sequentially
    /// (`⌈n / total_items⌉`, paper §4.2).
    pub fn items_per_invocation(&self) -> usize {
        if self.total_items() == 0 {
            0
        } else {
            self.n.div_ceil(self.total_items())
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_groups == 0 {
            return Err(KernelError::InvalidLaunchConfig("num_groups must be > 0".into()));
        }
        if self.group_size == 0 {
            return Err(KernelError::InvalidLaunchConfig("group_size must be > 0".into()));
        }
        Ok(())
    }
}

/// The paper's scheduling heuristic: one work-group per core, `4 × na`
/// work-items per group, device-preferred access pattern.
pub fn default_launch(info: &DeviceInfo, n: usize) -> LaunchConfig {
    let num_groups = info.compute_cores.max(1);
    let group_size = (4 * info.units_per_core).max(1);
    LaunchConfig::new(num_groups, group_size, n, info.preferred_access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn info(cores: usize, units: usize, access: AccessPattern) -> DeviceInfo {
        DeviceInfo {
            kind: DeviceKind::CpuMulticore,
            name: "test".into(),
            compute_cores: cores,
            units_per_core: units,
            local_mem_bytes: 1024,
            global_mem_bytes: usize::MAX,
            unified_memory: true,
            preferred_access: access,
        }
    }

    #[test]
    fn heuristic_matches_paper() {
        let cpu = info(4, 1, AccessPattern::Contiguous);
        let launch = default_launch(&cpu, 1_000_000);
        assert_eq!(launch.num_groups, 4);
        assert_eq!(launch.group_size, 4);
        assert_eq!(launch.total_items(), 16);

        let gpu = info(7, 48, AccessPattern::Strided);
        let launch = default_launch(&gpu, 1_000_000);
        assert_eq!(launch.num_groups, 7);
        assert_eq!(launch.group_size, 192);
        assert_eq!(launch.total_items(), 7 * 192);
    }

    #[test]
    fn items_per_invocation_rounds_up() {
        let launch = LaunchConfig::new(2, 2, 10, AccessPattern::Contiguous);
        assert_eq!(launch.items_per_invocation(), 3);
        let launch = LaunchConfig::new(2, 2, 8, AccessPattern::Contiguous);
        assert_eq!(launch.items_per_invocation(), 2);
        let launch = LaunchConfig::new(2, 2, 0, AccessPattern::Contiguous);
        assert_eq!(launch.items_per_invocation(), 0);
    }

    #[test]
    fn validation_rejects_zero_sizes() {
        assert!(LaunchConfig::new(0, 4, 10, AccessPattern::Contiguous).validate().is_err());
        assert!(LaunchConfig::new(4, 0, 10, AccessPattern::Contiguous).validate().is_err());
        assert!(LaunchConfig::new(1, 1, 0, AccessPattern::Contiguous).validate().is_ok());
    }

    #[test]
    fn builders_are_chainable() {
        let launch = LaunchConfig::new(1, 1, 10, AccessPattern::Strided)
            .with_num_groups(3)
            .with_group_size(5)
            .with_local_words(64)
            .with_n(100);
        assert_eq!(launch.num_groups, 3);
        assert_eq!(launch.group_size, 5);
        assert_eq!(launch.local_mem_words, 64);
        assert_eq!(launch.n, 100);
    }

    #[test]
    fn degenerate_device_clamps_to_one() {
        let weird = info(0, 0, AccessPattern::Contiguous);
        let launch = default_launch(&weird, 10);
        assert_eq!(launch.num_groups, 1);
        assert_eq!(launch.group_size, 1);
    }
}
