//! A small, dependency-light worker pool used by the CPU and simulated-GPU
//! drivers to execute work-groups in parallel.
//!
//! The pool is intentionally simple: a fixed set of worker threads pulling
//! closures from a crossbeam channel. Drivers submit one job per work-group
//! batch and wait for completion with a [`crossbeam::sync::WaitGroup`]. This
//! mirrors how an OpenCL CPU runtime maps work-groups onto OS threads
//! (one work-group is always executed by a single thread, paper §2.3).

use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool.
///
/// Dropping the pool shuts the workers down after they drain outstanding
/// jobs. The pool is cheap to share: drivers hold it in an `Arc`.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let mut workers = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let receiver = receiver.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ocelot-worker-{worker_id}"))
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        job();
                    }
                })
                .expect("failed to spawn ocelot worker thread");
            workers.push(handle);
        }
        ThreadPool { sender: Some(sender), workers, threads }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(threads)
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a single fire-and-forget job.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if let Some(sender) = &self.sender {
            // The receiver only disconnects when the pool is dropped, so a
            // send failure can only happen during shutdown races; dropping
            // the job is acceptable there.
            let _ = sender.send(Box::new(job));
        }
    }

    /// Runs every closure in `jobs` on the pool and blocks until all of them
    /// have finished.
    ///
    /// This is the primitive the drivers use: one job per work-group batch.
    pub fn execute_all<F>(&self, jobs: Vec<F>)
    where
        F: FnOnce() + Send + 'static,
    {
        if jobs.is_empty() {
            return;
        }
        let wg = WaitGroup::new();
        for job in jobs {
            let wg = wg.clone();
            self.submit(move || {
                job();
                drop(wg);
            });
        }
        wg.wait();
    }

    /// Partitions the half-open range `0..count` into roughly equal slices
    /// (one per worker) and runs `body(start, end)` for every non-empty
    /// slice, blocking until all slices are done.
    ///
    /// The hand-tuned "mitosis" parallel baseline in `ocelot-monet` is built
    /// on this helper.
    pub fn for_each_slice<F>(&self, count: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync + 'static,
    {
        if count == 0 {
            return;
        }
        let body = Arc::new(body);
        let workers = self.threads.min(count);
        let chunk = count.div_ceil(workers);
        let mut jobs: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(count);
            if start >= end {
                break;
            }
            let body = Arc::clone(&body);
            jobs.push(Box::new(move || body(start, end)));
        }
        self.execute_all(jobs);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes the workers' recv() fail and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.execute_all(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn empty_job_list_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.execute_all(Vec::<fn()>::new());
    }

    #[test]
    fn slices_cover_range_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits = Arc::new((0..1000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        let hits_clone = Arc::clone(&hits);
        pool.for_each_slice(1000, move |start, end| {
            for i in start..end {
                hits_clone[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_count_slice_is_noop() {
        let pool = ThreadPool::new(2);
        pool.for_each_slice(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn pool_clamps_to_at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute_all(vec![move || {
            c.fetch_add(1, Ordering::SeqCst);
        }]);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn more_jobs_than_threads() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.execute_all(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }
}
