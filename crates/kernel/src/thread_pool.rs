//! A small, dependency-free worker pool used by the CPU and simulated-GPU
//! drivers to execute work-groups in parallel.
//!
//! The pool is intentionally simple: a fixed set of worker threads pulling
//! tasks from a shared queue. This mirrors how an OpenCL CPU runtime maps
//! work-groups onto OS threads (one work-group is always executed by a
//! single thread, paper §2.3).
//!
//! Two submission paths exist:
//!
//! * [`ThreadPool::execute_all`] — heterogeneous one-shot jobs, one heap
//!   allocation per job (unavoidable for distinct `FnOnce` closures).
//! * [`ThreadPool::for_each_slice`] — the hot path drivers use for every
//!   kernel launch. It is *scoped* (the body may borrow from the caller's
//!   stack — no `'static` bound, no per-launch `Arc` cloning of kernels) and
//!   *allocation-light*: one shared task object is allocated per call,
//!   workers claim chunks from it through an atomic cursor, and the calling
//!   thread participates instead of blocking idle. This replaces the old
//!   scheme of one boxed closure plus one wait-group clone per slice.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Completion latch: counts outstanding work and wakes the waiter when the
/// count reaches zero. Panics observed while completing are replayed on the
/// waiting thread so a crashing kernel fails the launch instead of
/// deadlocking or dying silently on a worker.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: AtomicUsize::new(count),
            panicked: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        self.complete_many(1);
    }

    fn complete_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        if self.remaining.fetch_sub(n, Ordering::AcqRel) == n {
            // Taking the lock orders this notification after the waiter's
            // check of `remaining`, so the wakeup cannot be lost.
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    fn record_panic(&self) {
        self.panicked.store(true, Ordering::Release);
    }

    /// Blocks until the count reaches zero (never panics).
    fn wait_done(&self) {
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn wait(&self) {
        self.wait_done();
        if self.panicked.load(Ordering::Acquire) {
            panic!("ThreadPool: a submitted job panicked");
        }
    }
}

/// Completes one unit on drop, so unwinding bodies still release the waiter.
struct CompletionGuard<'a> {
    latch: &'a Latch,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.latch.record_panic();
        }
        self.latch.complete_one();
    }
}

/// A sliced launch shared between the caller and the workers: `body` is
/// applied to chunks of `0..count` claimed through `cursor`.
struct SliceTask {
    /// Lifetime-erased borrow of the caller's closure. Sound because
    /// [`ThreadPool::for_each_slice`] blocks on `latch` until every claimed
    /// chunk has completed before returning, and no chunk can be claimed
    /// after the cursor is exhausted.
    body: &'static (dyn Fn(usize, usize) + Sync),
    count: usize,
    chunk: usize,
    n_chunks: usize,
    cursor: AtomicUsize,
    latch: Latch,
}

// SAFETY: `body` is `Sync` (shared calls are fine) and only dereferenced
// while the creating call frame is alive (see `SliceTask::body`).
unsafe impl Send for SliceTask {}
unsafe impl Sync for SliceTask {}

impl SliceTask {
    /// Claims and runs chunks until the cursor is exhausted. Called by both
    /// the workers and the submitting thread.
    fn run_to_exhaustion(&self) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            if index >= self.n_chunks {
                return;
            }
            let start = index * self.chunk;
            let end = (start + self.chunk).min(self.count);
            let _guard = ChunkGuard { task: self };
            (self.body)(start, end);
        }
    }
}

/// Chunk-scoped completion guard: completes the claimed chunk on drop, and —
/// when the body panicked — also retires every chunk that will now never be
/// claimed. Each panicking claimer stops claiming, so without this the latch
/// count never reaches zero and `for_each_slice` would hang instead of
/// propagating the panic.
struct ChunkGuard<'a> {
    task: &'a SliceTask,
}

impl Drop for ChunkGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.task.latch.record_panic();
            // Exhaust the cursor: chunks in [old, n_chunks) can no longer be
            // handed out to anyone, so account for them here. Concurrent
            // claimers either got an index below `old` (they run it and
            // complete it themselves) or observe an exhausted cursor.
            let old = self.task.cursor.swap(self.task.n_chunks, Ordering::AcqRel);
            let never_claimed = self.task.n_chunks.saturating_sub(old);
            self.task.latch.complete_many(never_claimed);
        }
        self.task.latch.complete_one();
    }
}

enum Task {
    /// A boxed one-shot job (from `submit` / `execute_all`).
    Job(Box<dyn FnOnce() + Send + 'static>),
    /// A shared sliced launch (from `for_each_slice`).
    Sliced(Arc<SliceTask>),
}

/// Blocking MPMC queue the workers pull from.
struct TaskQueue {
    tasks: Mutex<VecDeque<Task>>,
    cv: Condvar,
    closed: AtomicBool,
}

impl TaskQueue {
    fn new() -> TaskQueue {
        TaskQueue {
            tasks: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    fn push(&self, task: Task) {
        let mut tasks = self.tasks.lock().unwrap_or_else(|e| e.into_inner());
        tasks.push_back(task);
        drop(tasks);
        self.cv.notify_one();
    }

    /// Blocks for the next task; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Task> {
        let mut tasks = self.tasks.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(task) = tasks.pop_front() {
                return Some(task);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            tasks = self.cv.wait(tasks).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        // The store must happen under the queue mutex: a worker that has
        // checked `closed` but not yet parked on the condvar would otherwise
        // miss this notification forever and `Drop::join` would hang.
        let guard = self.tasks.lock().unwrap_or_else(|e| e.into_inner());
        self.closed.store(true, Ordering::Release);
        drop(guard);
        self.cv.notify_all();
    }
}

/// Fixed-size worker pool.
///
/// Dropping the pool shuts the workers down after they drain outstanding
/// tasks. The pool is cheap to share: drivers hold it in an `Arc`.
pub struct ThreadPool {
    queue: Arc<TaskQueue>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(TaskQueue::new());
        let mut workers = Vec::with_capacity(threads);
        for worker_id in 0..threads {
            let queue = Arc::clone(&queue);
            let handle = std::thread::Builder::new()
                .name(format!("ocelot-worker-{worker_id}"))
                .spawn(move || {
                    while let Some(task) = queue.pop() {
                        // A panicking job must not take the worker down with
                        // it: completion guards record the panic and the
                        // waiting thread replays it.
                        let _ = catch_unwind(AssertUnwindSafe(|| match task {
                            Task::Job(job) => job(),
                            Task::Sliced(slices) => slices.run_to_exhaustion(),
                        }));
                    }
                })
                .expect("failed to spawn ocelot worker thread");
            workers.push(handle);
        }
        ThreadPool { queue, workers, threads }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(threads)
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a single fire-and-forget job.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.queue.push(Task::Job(Box::new(job)));
    }

    /// Runs every closure in `jobs` on the pool and blocks until all of them
    /// have finished. Panics if any job panicked.
    pub fn execute_all<F>(&self, jobs: Vec<F>)
    where
        F: FnOnce() + Send + 'static,
    {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        for job in jobs {
            let latch = Arc::clone(&latch);
            self.queue.push(Task::Job(Box::new(move || {
                let _guard = CompletionGuard { latch: &latch };
                job();
            })));
        }
        latch.wait();
    }

    /// Partitions the half-open range `0..count` into chunks and runs
    /// `body(start, end)` for every non-empty chunk, blocking until all of
    /// them are done. Chunks are claimed dynamically (a few per worker) so
    /// uneven bodies still balance, and the calling thread participates
    /// instead of waiting idle.
    ///
    /// The body may borrow from the caller's stack — the call blocks until
    /// every chunk has completed, so no `'static` bound is needed. This is
    /// the hot path of every kernel launch on the multicore drivers; it
    /// allocates exactly one shared task object regardless of `count`.
    pub fn for_each_slice<F>(&self, count: usize, body: F)
    where
        F: Fn(usize, usize) + Send + Sync,
    {
        if count == 0 {
            return;
        }
        if self.threads == 1 {
            body(0, count);
            return;
        }
        // A few chunks per worker: enough slack to balance skewed bodies,
        // few enough that chunk-claim traffic stays negligible.
        let n_chunks = (self.threads * 4).min(count);
        let chunk = count.div_ceil(n_chunks);
        let n_chunks = count.div_ceil(chunk);

        let body_ref: &(dyn Fn(usize, usize) + Sync) = &body;
        // SAFETY: lifetime erasure only — the task cannot outlive this call
        // frame in any way that *uses* `body`: chunks are claimed through
        // `cursor` (exhausted before `latch` releases), and `latch.wait()`
        // below blocks until every claimed chunk has completed. Workers that
        // pick the task up later observe an exhausted cursor and never touch
        // `body`.
        let body_static: &'static (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(body_ref) };

        let task = Arc::new(SliceTask {
            body: body_static,
            count,
            chunk,
            n_chunks,
            cursor: AtomicUsize::new(0),
            latch: Latch::new(n_chunks),
        });
        // One queue entry per worker that could usefully help (not per
        // chunk): each entry drains chunks until the cursor runs out.
        let helpers = (self.threads - 1).min(n_chunks);
        for _ in 0..helpers {
            self.queue.push(Task::Sliced(Arc::clone(&task)));
        }
        // The caller's own chunks run under catch_unwind: an unwinding body
        // must not escape this frame while workers may still call `body`.
        let caller = catch_unwind(AssertUnwindSafe(|| task.run_to_exhaustion()));
        task.latch.wait_done();
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if task.latch.panicked.load(Ordering::Acquire) {
            panic!("ThreadPool: a for_each_slice body panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.execute_all(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn empty_job_list_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.execute_all(Vec::<fn()>::new());
    }

    #[test]
    fn slices_cover_range_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        // The body borrows `hits` from this stack frame — the scoped path
        // needs no Arc and no 'static.
        pool.for_each_slice(1000, |start, end| {
            for hit in &hits[start..end] {
                hit.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_count_slice_is_noop() {
        let pool = ThreadPool::new(2);
        pool.for_each_slice(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut touched = vec![false; 100];
        let cell = std::sync::Mutex::new(&mut touched);
        pool.for_each_slice(100, |start, end| {
            let mut guard = cell.lock().unwrap();
            for i in start..end {
                guard[i] = true;
            }
        });
        assert!(touched.iter().all(|t| *t));
    }

    #[test]
    fn pool_clamps_to_at_least_one_thread() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.execute_all(vec![move || {
            c.fetch_add(1, Ordering::SeqCst);
        }]);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn more_jobs_than_threads() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.execute_all(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn more_slices_than_threads_balance_dynamically() {
        let pool = ThreadPool::new(2);
        let total = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&total);
        pool.for_each_slice(10_000, move |start, end| {
            t.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 10_000);
    }

    #[test]
    fn panicking_job_propagates_to_waiter_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_slice(8, |start, _| {
                if start == 0 {
                    panic!("kernel bug");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitting thread");
        // The pool is still usable afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.for_each_slice(100, move |start, end| {
            c.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn panicking_in_every_chunk_panics_instead_of_hanging() {
        // More panicking chunks than claimers: each claimer dies after one
        // chunk, so the unclaimed chunks must be retired by the panic path
        // or the latch would wait forever.
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_slice(100, |_, _| panic!("kernel bug in every chunk"));
        }));
        assert!(result.is_err(), "panic must propagate, not hang");
        // The pool is still usable afterwards.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.for_each_slice(50, move |start, end| {
            c.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn sequential_pool_still_observes_borrowed_state() {
        // Regression guard for the scoped API: mutable borrow via interior
        // mutability, single-threaded inline fast path.
        let pool = ThreadPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.for_each_slice(10, |start, end| {
            sum.fetch_add(end - start, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }
}
