//! The bucket-chained hash table used by the hand-tuned baseline.
//!
//! MonetDB builds its join and group-by hash tables sequentially with a
//! classic bucket + chain layout: `buckets[h]` holds the index of the most
//! recent row that hashed to `h`, and `next[i]` links to the previous row in
//! the same bucket. Build is a single pass without any synchronisation —
//! the paper's Figure 5(e) shows this sequential build beating Ocelot's
//! atomic-heavy parallel build on the CPU, which is why it is reproduced
//! faithfully here.

use ocelot_storage::Oid;

const EMPTY: u32 = u32::MAX;

/// Multiplicative integer hash (Fibonacci hashing); good enough spread for
/// the dense and uniform keys TPC-H produces.
#[inline]
pub fn hash_i32(key: i32, mask: u32) -> u32 {
    let h = (key as u32).wrapping_mul(0x9E37_79B1);
    h & mask
}

/// A read-only bucket-chained hash table over an `i32` key column.
#[derive(Debug, Clone)]
pub struct MonetHashTable {
    buckets: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<i32>,
    mask: u32,
}

impl MonetHashTable {
    /// Builds a hash table over `keys` with roughly one bucket per key.
    pub fn build(keys: &[i32]) -> MonetHashTable {
        let bucket_count = (keys.len().max(1)).next_power_of_two();
        let mask = (bucket_count - 1) as u32;
        let mut buckets = vec![EMPTY; bucket_count];
        let mut next = vec![EMPTY; keys.len()];
        for (row, key) in keys.iter().enumerate() {
            let slot = hash_i32(*key, mask) as usize;
            next[row] = buckets[slot];
            buckets[slot] = row as u32;
        }
        MonetHashTable { buckets, next, keys: keys.to_vec(), mask }
    }

    /// Number of rows indexed by the table.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table indexes zero rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of hash buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over the row ids whose key equals `key` (most recently
    /// inserted first).
    pub fn probe(&self, key: i32) -> ProbeIter<'_> {
        let slot = hash_i32(key, self.mask) as usize;
        ProbeIter { table: self, key, cursor: self.buckets[slot] }
    }

    /// The first matching row id for `key`, if any. For key (unique)
    /// columns this is *the* match.
    pub fn find_first(&self, key: i32) -> Option<Oid> {
        self.probe(key).next()
    }

    /// Whether any row has the given key.
    pub fn contains(&self, key: i32) -> bool {
        self.find_first(key).is_some()
    }

    /// Counts the rows matching `key`.
    pub fn count(&self, key: i32) -> usize {
        self.probe(key).count()
    }

    /// Longest chain length — a diagnostic used by tests and the ablation
    /// benchmarks to characterise skew.
    pub fn max_chain_length(&self) -> usize {
        let mut max = 0;
        for &head in &self.buckets {
            let mut len = 0;
            let mut cursor = head;
            while cursor != EMPTY {
                len += 1;
                cursor = self.next[cursor as usize];
            }
            max = max.max(len);
        }
        max
    }
}

/// Iterator over the row ids matching a probe key.
pub struct ProbeIter<'a> {
    table: &'a MonetHashTable,
    key: i32,
    cursor: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = Oid;

    fn next(&mut self) -> Option<Oid> {
        while self.cursor != EMPTY {
            let row = self.cursor;
            self.cursor = self.table.next[row as usize];
            if self.table.keys[row as usize] == self.key {
                return Some(row);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn build_and_probe_unique_keys() {
        let keys: Vec<i32> = (0..1000).collect();
        let table = MonetHashTable::build(&keys);
        assert_eq!(table.len(), 1000);
        for k in 0..1000 {
            assert_eq!(table.find_first(k), Some(k as Oid));
            assert_eq!(table.count(k), 1);
        }
        assert_eq!(table.find_first(5000), None);
        assert!(!table.contains(-1));
    }

    #[test]
    fn duplicate_keys_are_all_found() {
        let keys = vec![7, 3, 7, 7, 3, 1];
        let table = MonetHashTable::build(&keys);
        let mut sevens: Vec<Oid> = table.probe(7).collect();
        sevens.sort_unstable();
        assert_eq!(sevens, vec![0, 2, 3]);
        assert_eq!(table.count(3), 2);
        assert_eq!(table.count(1), 1);
        assert_eq!(table.count(99), 0);
    }

    #[test]
    fn empty_table() {
        let table = MonetHashTable::build(&[]);
        assert!(table.is_empty());
        assert_eq!(table.find_first(0), None);
        assert_eq!(table.max_chain_length(), 0);
    }

    #[test]
    fn negative_keys() {
        let keys = vec![-5, -1, 0, 3, -5];
        let table = MonetHashTable::build(&keys);
        assert_eq!(table.count(-5), 2);
        assert_eq!(table.count(-1), 1);
        assert_eq!(table.count(5), 0);
    }

    #[test]
    fn bucket_count_is_power_of_two() {
        for n in [0usize, 1, 2, 3, 100, 1000] {
            let keys: Vec<i32> = (0..n as i32).collect();
            let table = MonetHashTable::build(&keys);
            assert!(table.bucket_count().is_power_of_two());
            assert!(table.bucket_count() >= n.max(1));
        }
    }

    proptest! {
        #[test]
        fn probe_matches_linear_scan(keys in proptest::collection::vec(-50i32..50, 0..300), probe in -60i32..60) {
            let table = MonetHashTable::build(&keys);
            let mut expected: Vec<Oid> = keys
                .iter()
                .enumerate()
                .filter(|(_, k)| **k == probe)
                .map(|(i, _)| i as Oid)
                .collect();
            let mut found: Vec<Oid> = table.probe(probe).collect();
            expected.sort_unstable();
            found.sort_unstable();
            prop_assert_eq!(found, expected);
        }
    }
}
