//! # ocelot-monet — hand-tuned baseline operators (MS and MP)
//!
//! The paper evaluates Ocelot against MonetDB in two configurations
//! (§5.1): *sequential MonetDB* (MS), which runs the operators on a single
//! CPU core, and *parallel MonetDB* (MP), which uses the Mitosis/Dataflow
//! optimizers to partition the input across all cores. This crate
//! re-implements that baseline operator set in Rust:
//!
//! * [`sequential`] — single-threaded, hand-tuned operators (selection,
//!   fetch join / projection, arithmetic maps, aggregation, grouping, hash
//!   join, sorting) written directly against column slices.
//! * [`parallel`] — the MP analogue: the same operators parallelised with
//!   the mitosis pattern (partition the input into per-core slices, run the
//!   sequential operator per slice, merge the partial results).
//! * [`hash_table`] — the bucket-chained hash table MonetDB-style joins and
//!   group-bys are built on; the hash-table-build microbenchmark
//!   (Figure 5e/5f) measures it directly.
//!
//! These operators are deliberately *hardware-conscious*: they know they run
//! on a CPU, they use per-thread private state and merge steps instead of
//! atomics, and the sequential variants avoid all synchronisation. That is
//! exactly the comparison point the paper argues a hardware-oblivious design
//! must hold its own against.

pub mod hash_table;
pub mod parallel;
pub mod sequential;

pub use hash_table::MonetHashTable;
