//! Parallel aggregation: every partition computes a private partial
//! aggregate, the partials are merged sequentially (there are at most
//! `threads` of them). This avoids all synchronisation — the hand-tuned
//! pattern the paper contrasts with Ocelot's atomic-based kernels (§5.2.4).

use super::partition::run_partitions;
use crate::sequential;

/// Parallel sum of a float column.
pub fn par_sum_f32(values: &[f32], threads: usize) -> f32 {
    let partials = run_partitions(values.len(), threads, |s, e| {
        values[s..e].iter().map(|v| *v as f64).sum::<f64>()
    });
    partials.into_iter().sum::<f64>() as f32
}

/// Parallel sum of an integer column.
pub fn par_sum_i32(values: &[i32], threads: usize) -> i64 {
    let partials = run_partitions(values.len(), threads, |s, e| sequential::sum_i32(&values[s..e]));
    partials.into_iter().sum()
}

/// Parallel minimum of an integer column.
pub fn par_min_i32(values: &[i32], threads: usize) -> Option<i32> {
    let partials = run_partitions(values.len(), threads, |s, e| sequential::min_i32(&values[s..e]));
    partials.into_iter().flatten().min()
}

/// Parallel maximum of an integer column.
pub fn par_max_i32(values: &[i32], threads: usize) -> Option<i32> {
    let partials = run_partitions(values.len(), threads, |s, e| sequential::max_i32(&values[s..e]));
    partials.into_iter().flatten().max()
}

/// Parallel minimum of a float column.
pub fn par_min_f32(values: &[f32], threads: usize) -> Option<f32> {
    let partials = run_partitions(values.len(), threads, |s, e| sequential::min_f32(&values[s..e]));
    partials.into_iter().flatten().reduce(f32::min)
}

/// Parallel maximum of a float column.
pub fn par_max_f32(values: &[f32], threads: usize) -> Option<f32> {
    let partials = run_partitions(values.len(), threads, |s, e| sequential::max_f32(&values[s..e]));
    partials.into_iter().flatten().reduce(f32::max)
}

/// Parallel mean of a float column.
pub fn par_avg_f32(values: &[f32], threads: usize) -> Option<f32> {
    if values.is_empty() {
        return None;
    }
    let partials = run_partitions(values.len(), threads, |s, e| {
        values[s..e].iter().map(|v| *v as f64).sum::<f64>()
    });
    Some((partials.into_iter().sum::<f64>() / values.len() as f64) as f32)
}

/// Parallel per-group sums: each partition accumulates a private group
/// table, the tables are added element-wise.
pub fn par_grouped_sum_f32(
    values: &[f32],
    gids: &[u32],
    num_groups: usize,
    threads: usize,
) -> Vec<f32> {
    assert_eq!(values.len(), gids.len(), "par_grouped_sum_f32: length mismatch");
    let partials = run_partitions(values.len(), threads, |s, e| {
        let mut local = vec![0.0f64; num_groups];
        for (value, gid) in values[s..e].iter().zip(gids[s..e].iter()) {
            local[*gid as usize] += *value as f64;
        }
        local
    });
    let mut totals = vec![0.0f64; num_groups];
    for partial in partials {
        for (total, value) in totals.iter_mut().zip(partial) {
            *total += value;
        }
    }
    totals.into_iter().map(|v| v as f32).collect()
}

/// Parallel per-group counts.
pub fn par_grouped_count(gids: &[u32], num_groups: usize, threads: usize) -> Vec<i64> {
    let partials = run_partitions(gids.len(), threads, |s, e| {
        sequential::grouped_count(&gids[s..e], num_groups)
    });
    let mut totals = vec![0i64; num_groups];
    for partial in partials {
        for (total, value) in totals.iter_mut().zip(partial) {
            *total += value;
        }
    }
    totals
}

/// Parallel per-group minima of a float column.
pub fn par_grouped_min_f32(
    values: &[f32],
    gids: &[u32],
    num_groups: usize,
    threads: usize,
) -> Vec<f32> {
    let partials = run_partitions(values.len(), threads, |s, e| {
        sequential::grouped_min_f32(&values[s..e], &gids[s..e], num_groups)
    });
    let mut totals = vec![f32::INFINITY; num_groups];
    for partial in partials {
        for (total, value) in totals.iter_mut().zip(partial) {
            *total = total.min(value);
        }
    }
    totals
}

/// Parallel per-group maxima of a float column.
pub fn par_grouped_max_f32(
    values: &[f32],
    gids: &[u32],
    num_groups: usize,
    threads: usize,
) -> Vec<f32> {
    let partials = run_partitions(values.len(), threads, |s, e| {
        sequential::grouped_max_f32(&values[s..e], &gids[s..e], num_groups)
    });
    let mut totals = vec![f32::NEG_INFINITY; num_groups];
    for partial in partials {
        for (total, value) in totals.iter_mut().zip(partial) {
            *total = total.max(value);
        }
    }
    totals
}

/// Parallel per-group averages.
pub fn par_grouped_avg_f32(
    values: &[f32],
    gids: &[u32],
    num_groups: usize,
    threads: usize,
) -> Vec<f32> {
    let sums = par_grouped_sum_f32(values, gids, num_groups, threads);
    let counts = par_grouped_count(gids, num_groups, threads);
    sums.iter()
        .zip(counts.iter())
        .map(|(s, c)| if *c == 0 { 0.0 } else { (*s as f64 / *c as f64) as f32 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13 + 5) % 101) as f32 * 0.5).collect()
    }

    fn gids(n: usize, groups: u32) -> Vec<u32> {
        (0..n).map(|i| (i as u32 * 7 + 3) % groups).collect()
    }

    #[test]
    fn ungrouped_match_sequential() {
        let vals = values(10_000);
        let ints: Vec<i32> = (0..10_000).map(|i| (i % 997) - 200).collect();
        for threads in [1, 2, 4] {
            assert!((par_sum_f32(&vals, threads) - sequential::sum_f32(&vals)).abs() < 1e-3);
            assert_eq!(par_sum_i32(&ints, threads), sequential::sum_i32(&ints));
            assert_eq!(par_min_i32(&ints, threads), sequential::min_i32(&ints));
            assert_eq!(par_max_i32(&ints, threads), sequential::max_i32(&ints));
            assert_eq!(par_min_f32(&vals, threads), sequential::min_f32(&vals));
            assert_eq!(par_max_f32(&vals, threads), sequential::max_f32(&vals));
        }
    }

    #[test]
    fn avg_matches_sequential() {
        let vals = values(999);
        let expected = sequential::avg_f32(&vals).unwrap();
        let got = par_avg_f32(&vals, 4).unwrap();
        assert!((expected - got).abs() < 1e-4);
        assert_eq!(par_avg_f32(&[], 4), None);
    }

    #[test]
    fn grouped_match_sequential() {
        let vals = values(5_000);
        let ids = gids(5_000, 37);
        let seq_sum = sequential::grouped_sum_f32(&vals, &ids, 37);
        let par_sum = par_grouped_sum_f32(&vals, &ids, 37, 4);
        for (a, b) in seq_sum.iter().zip(par_sum.iter()) {
            assert!((a - b).abs() < 1e-2);
        }
        assert_eq!(par_grouped_count(&ids, 37, 4), sequential::grouped_count(&ids, 37));
        assert_eq!(
            par_grouped_min_f32(&vals, &ids, 37, 4),
            sequential::grouped_min_f32(&vals, &ids, 37)
        );
        assert_eq!(
            par_grouped_max_f32(&vals, &ids, 37, 4),
            sequential::grouped_max_f32(&vals, &ids, 37)
        );
    }

    #[test]
    fn grouped_avg() {
        let vals = vec![2.0f32, 4.0, 6.0, 8.0];
        let ids = vec![0u32, 0, 1, 1];
        assert_eq!(par_grouped_avg_f32(&vals, &ids, 2, 2), vec![3.0, 7.0]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(par_sum_f32(&[], 4), 0.0);
        assert_eq!(par_min_i32(&[], 4), None);
        assert_eq!(par_grouped_count(&[], 3, 4), vec![0, 0, 0]);
    }
}
