//! Parallel arithmetic map operators: the input columns are partitioned and
//! the sequential map kernel runs per slice.

use super::partition::run_partitions;
use crate::sequential;

/// Parallel element-wise `a * b`.
pub fn par_mul_f32(a: &[f32], b: &[f32], threads: usize) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "par_mul_f32: length mismatch");
    run_partitions(a.len(), threads, |s, e| sequential::mul_f32(&a[s..e], &b[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel element-wise `a + b`.
pub fn par_add_f32(a: &[f32], b: &[f32], threads: usize) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "par_add_f32: length mismatch");
    run_partitions(a.len(), threads, |s, e| sequential::add_f32(&a[s..e], &b[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel element-wise `a - b`.
pub fn par_sub_f32(a: &[f32], b: &[f32], threads: usize) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "par_sub_f32: length mismatch");
    run_partitions(a.len(), threads, |s, e| sequential::sub_f32(&a[s..e], &b[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel element-wise `constant - a`.
pub fn par_const_minus_f32(constant: f32, a: &[f32], threads: usize) -> Vec<f32> {
    run_partitions(a.len(), threads, |s, e| sequential::const_minus_f32(constant, &a[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel element-wise `constant + a`.
pub fn par_const_plus_f32(constant: f32, a: &[f32], threads: usize) -> Vec<f32> {
    run_partitions(a.len(), threads, |s, e| sequential::const_plus_f32(constant, &a[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel cast from `i32` to `f32`.
pub fn par_cast_i32_f32(a: &[i32], threads: usize) -> Vec<f32> {
    run_partitions(a.len(), threads, |s, e| sequential::cast_i32_f32(&a[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

/// Parallel year extraction from a day-number date column.
pub fn par_extract_year(days: &[i32], threads: usize) -> Vec<i32> {
    run_partitions(days.len(), threads, |s, e| sequential::extract_year(&days[s..e]))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_storage::types::date_to_days;

    #[test]
    fn maps_match_sequential() {
        let a: Vec<f32> = (0..5_000).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..5_000).map(|i| (i % 17) as f32).collect();
        assert_eq!(par_mul_f32(&a, &b, 4), sequential::mul_f32(&a, &b));
        assert_eq!(par_add_f32(&a, &b, 3), sequential::add_f32(&a, &b));
        assert_eq!(par_sub_f32(&a, &b, 2), sequential::sub_f32(&a, &b));
        assert_eq!(par_const_minus_f32(1.0, &a, 4), sequential::const_minus_f32(1.0, &a));
        assert_eq!(par_const_plus_f32(1.0, &a, 4), sequential::const_plus_f32(1.0, &a));
    }

    #[test]
    fn casts_and_years() {
        let ints: Vec<i32> = (0..1000).collect();
        assert_eq!(par_cast_i32_f32(&ints, 4), sequential::cast_i32_f32(&ints));
        let days: Vec<i32> =
            (0..1000).map(|i| date_to_days(1992 + (i % 7), 1 + (i % 12) as u32, 1)).collect();
        assert_eq!(par_extract_year(&days, 4), sequential::extract_year(&days));
    }

    #[test]
    fn empty_inputs() {
        assert!(par_mul_f32(&[], &[], 4).is_empty());
        assert!(par_extract_year(&[], 4).is_empty());
    }
}
