//! Parallel group-by using the two-phase mitosis pattern: every partition
//! collects the distinct keys of its slice, a global dense-ID mapping is
//! built from the per-partition key sets, and a second parallel pass maps
//! every row to its global group ID.

use super::partition::run_partitions;
use crate::sequential::GroupResult;
use ocelot_storage::Oid;
use std::collections::HashMap;

/// Parallel single-column group-by. The resulting group IDs are dense; group
/// numbering follows first appearance in partition order, which is a valid
/// (if different) numbering compared to the sequential operator — consumers
/// must only rely on "same key ⇔ same gid".
pub fn par_group_by_i32(column: &[i32], threads: usize) -> GroupResult {
    // Phase 1: per-partition distinct keys with their first-occurrence row.
    let locals = run_partitions(column.len(), threads, |start, end| {
        let mut firsts: HashMap<i32, Oid> = HashMap::new();
        for (offset, value) in column[start..end].iter().enumerate() {
            firsts.entry(*value).or_insert((start + offset) as Oid);
        }
        let mut pairs: Vec<(i32, Oid)> = firsts.into_iter().collect();
        // Deterministic order within the partition: by first occurrence.
        pairs.sort_by_key(|(_, row)| *row);
        pairs
    });

    // Phase 2 (sequential, tiny): build the global mapping.
    let mut mapping: HashMap<i32, u32> = HashMap::new();
    let mut representatives: Vec<Oid> = Vec::new();
    for pairs in &locals {
        for (value, row) in pairs {
            let next_id = mapping.len() as u32;
            mapping.entry(*value).or_insert_with(|| {
                representatives.push(*row);
                next_id
            });
        }
    }

    // Phase 3: parallel assignment of global group ids.
    let gid_parts = run_partitions(column.len(), threads, |start, end| {
        column[start..end].iter().map(|value| mapping[value]).collect::<Vec<u32>>()
    });
    let gids: Vec<u32> = gid_parts.into_iter().flatten().collect();

    GroupResult { gids, num_groups: mapping.len(), representatives }
}

/// Parallel refinement of an existing grouping with an additional column
/// (multi-column group-by).
pub fn par_group_refine_i32(column: &[i32], previous: &GroupResult, threads: usize) -> GroupResult {
    assert_eq!(column.len(), previous.gids.len(), "par_group_refine_i32: length mismatch");
    let locals = run_partitions(column.len(), threads, |start, end| {
        let mut firsts: HashMap<(u32, i32), Oid> = HashMap::new();
        for (offset, value) in column[start..end].iter().enumerate() {
            let row = start + offset;
            firsts.entry((previous.gids[row], *value)).or_insert(row as Oid);
        }
        let mut pairs: Vec<((u32, i32), Oid)> = firsts.into_iter().collect();
        pairs.sort_by_key(|(_, row)| *row);
        pairs
    });

    let mut mapping: HashMap<(u32, i32), u32> = HashMap::new();
    let mut representatives: Vec<Oid> = Vec::new();
    for pairs in &locals {
        for (key, row) in pairs {
            let next_id = mapping.len() as u32;
            mapping.entry(*key).or_insert_with(|| {
                representatives.push(*row);
                next_id
            });
        }
    }

    let gid_parts = run_partitions(column.len(), threads, |start, end| {
        (start..end).map(|row| mapping[&(previous.gids[row], column[row])]).collect::<Vec<u32>>()
    });
    let gids: Vec<u32> = gid_parts.into_iter().flatten().collect();

    GroupResult { gids, num_groups: mapping.len(), representatives }
}

/// Parallel multi-column group-by by repeated refinement.
pub fn par_group_by_columns(columns: &[&[i32]], threads: usize) -> GroupResult {
    match columns.split_first() {
        None => GroupResult { gids: vec![], num_groups: 0, representatives: vec![] },
        Some((first, rest)) => {
            let mut result = par_group_by_i32(first, threads);
            for column in rest {
                result = par_group_refine_i32(column, &result, threads);
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    fn check_equivalent_partition(column: &[i32], seq: &GroupResult, par: &GroupResult) {
        assert_eq!(seq.num_groups, par.num_groups);
        assert_eq!(seq.gids.len(), par.gids.len());
        // Same key ⇔ same group id, even if the numbering differs.
        for i in 0..column.len() {
            for j in (i + 1)..column.len().min(i + 50) {
                assert_eq!(
                    seq.gids[i] == seq.gids[j],
                    par.gids[i] == par.gids[j],
                    "rows {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_partitioning() {
        let column: Vec<i32> = (0..5_000).map(|i| (i * 31 + 7) % 100).collect();
        let seq = sequential::group_by_i32(&column);
        for threads in [1, 2, 4, 7] {
            let par = par_group_by_i32(&column, threads);
            check_equivalent_partition(&column, &seq, &par);
        }
    }

    #[test]
    fn representatives_belong_to_their_groups() {
        let column: Vec<i32> = (0..1_000).map(|i| i % 13).collect();
        let par = par_group_by_i32(&column, 4);
        assert_eq!(par.representatives.len(), par.num_groups);
        for (gid, rep) in par.representatives.iter().enumerate() {
            assert_eq!(par.gids[*rep as usize] as usize, gid);
        }
    }

    #[test]
    fn refinement_matches_sequential() {
        let a: Vec<i32> = (0..2_000).map(|i| i % 5).collect();
        let b: Vec<i32> = (0..2_000).map(|i| i % 7).collect();
        let seq = sequential::group_by_columns(&[&a, &b]);
        let par = par_group_by_columns(&[&a, &b], 4);
        assert_eq!(seq.num_groups, par.num_groups);
        assert_eq!(seq.num_groups, 35);
        // Spot-check the key ⇔ gid equivalence.
        for i in (0..2_000).step_by(111) {
            for j in (0..2_000).step_by(97) {
                assert_eq!(
                    (a[i], b[i]) == (a[j], b[j]),
                    par.gids[i] == par.gids[j],
                    "rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        let result = par_group_by_i32(&[], 4);
        assert_eq!(result.num_groups, 0);
        assert!(result.gids.is_empty());
        assert!(par_group_by_columns(&[], 4).gids.is_empty());
    }
}
