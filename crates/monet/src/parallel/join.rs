//! Parallel joins: the hash table is built once (sequentially, like
//! MonetDB), the probe side is partitioned across threads.

use super::partition::run_partitions;
use crate::hash_table::MonetHashTable;
use ocelot_storage::Oid;

/// Parallel hash equi-join (build over `right`, parallel probe over `left`).
pub fn par_hash_join_i32(left: &[i32], right: &[i32], threads: usize) -> (Vec<Oid>, Vec<Oid>) {
    let table = MonetHashTable::build(right);
    let parts = run_partitions(left.len(), threads, |start, end| {
        let mut left_out = Vec::new();
        let mut right_out = Vec::new();
        for (offset, key) in left[start..end].iter().enumerate() {
            for right_row in table.probe(*key) {
                left_out.push((start + offset) as Oid);
                right_out.push(right_row);
            }
        }
        (left_out, right_out)
    });
    let mut left_all = Vec::new();
    let mut right_all = Vec::new();
    for (l, r) in parts {
        left_all.extend(l);
        right_all.extend(r);
    }
    (left_all, right_all)
}

/// Parallel PK-FK join through a prebuilt hash table.
pub fn par_pkfk_join_i32(
    foreign_keys: &[i32],
    table: &MonetHashTable,
    threads: usize,
) -> (Vec<Oid>, Vec<Oid>) {
    let parts = run_partitions(foreign_keys.len(), threads, |start, end| {
        let mut fk_oids = Vec::new();
        let mut pk_oids = Vec::new();
        for (offset, key) in foreign_keys[start..end].iter().enumerate() {
            if let Some(pk_row) = table.find_first(*key) {
                fk_oids.push((start + offset) as Oid);
                pk_oids.push(pk_row);
            }
        }
        (fk_oids, pk_oids)
    });
    let mut fk_all = Vec::new();
    let mut pk_all = Vec::new();
    for (f, p) in parts {
        fk_all.extend(f);
        pk_all.extend(p);
    }
    (fk_all, pk_all)
}

/// Parallel semi join (`EXISTS`).
pub fn par_semi_join_i32(left: &[i32], right: &[i32], threads: usize) -> Vec<Oid> {
    let table = MonetHashTable::build(right);
    run_partitions(left.len(), threads, |start, end| {
        left[start..end]
            .iter()
            .enumerate()
            .filter(|(_, key)| table.contains(**key))
            .map(|(offset, _)| (start + offset) as Oid)
            .collect::<Vec<Oid>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Parallel anti join (`NOT EXISTS`).
pub fn par_anti_join_i32(left: &[i32], right: &[i32], threads: usize) -> Vec<Oid> {
    let table = MonetHashTable::build(right);
    run_partitions(left.len(), threads, |start, end| {
        left[start..end]
            .iter()
            .enumerate()
            .filter(|(_, key)| !table.contains(**key))
            .map(|(offset, _)| (start + offset) as Oid)
            .collect::<Vec<Oid>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    fn keys(n: usize, modulus: i32) -> Vec<i32> {
        (0..n).map(|i| ((i as i32) * 17 + 3) % modulus).collect()
    }

    #[test]
    fn hash_join_matches_sequential() {
        let left = keys(3_000, 100);
        let right = keys(500, 100);
        let (seq_l, seq_r) = sequential::hash_join_i32(&left, &right);
        for threads in [1, 2, 4] {
            let (par_l, par_r) = par_hash_join_i32(&left, &right, threads);
            let mut seq_pairs: Vec<(Oid, Oid)> =
                seq_l.iter().copied().zip(seq_r.iter().copied()).collect();
            let mut par_pairs: Vec<(Oid, Oid)> = par_l.into_iter().zip(par_r).collect();
            seq_pairs.sort_unstable();
            par_pairs.sort_unstable();
            assert_eq!(seq_pairs, par_pairs);
        }
    }

    #[test]
    fn pkfk_join_matches_sequential() {
        let pk: Vec<i32> = (0..200).collect();
        let table = MonetHashTable::build(&pk);
        let fk = keys(5_000, 200);
        let (seq_f, seq_p) = sequential::pkfk_join_i32(&fk, &table);
        let (par_f, par_p) = par_pkfk_join_i32(&fk, &table, 4);
        assert_eq!(seq_f, par_f);
        assert_eq!(seq_p, par_p);
    }

    #[test]
    fn semi_and_anti_match_sequential() {
        let left = keys(4_000, 300);
        let right = keys(100, 150);
        assert_eq!(par_semi_join_i32(&left, &right, 4), sequential::semi_join_i32(&left, &right));
        assert_eq!(par_anti_join_i32(&left, &right, 4), sequential::anti_join_i32(&left, &right));
    }

    #[test]
    fn empty_inputs() {
        let (l, r) = par_hash_join_i32(&[], &[1], 4);
        assert!(l.is_empty() && r.is_empty());
        assert!(par_semi_join_i32(&[], &[1], 4).is_empty());
    }
}
