//! Parallel (multi-core) baseline operators — the paper's "MP"
//! configuration.
//!
//! MonetDB parallelises queries with the *Mitosis* and *Dataflow* optimizers
//! (§5.1): the input is horizontally partitioned, each partition is
//! processed by the sequential operator on its own core, and the partial
//! results are merged. The operators in this module follow that exact
//! pattern on top of [`partition::run_partitions`], which is a thin wrapper
//! around scoped OS threads.
//!
//! Every function takes an explicit `threads` argument so benchmarks can
//! sweep the degree of parallelism; the engine passes the machine's
//! available parallelism.

pub mod aggregate;
pub mod calc;
pub mod group;
pub mod join;
pub mod partition;
pub mod project;
pub mod select;
pub mod sort;

pub use aggregate::*;
pub use calc::*;
pub use group::*;
pub use join::*;
pub use partition::*;
pub use project::*;
pub use select::*;
pub use sort::*;
