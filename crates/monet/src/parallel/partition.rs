//! The mitosis partitioning helper: split a row range into per-core slices,
//! run a worker per slice on scoped threads, and collect the partial results
//! in partition order.

/// Splits `0..n` into at most `parts` contiguous, non-empty ranges of nearly
/// equal size.
pub fn partition_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(n);
    let chunk = n.div_ceil(parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Runs `worker(start, end)` for every partition of `0..n` on up to
/// `threads` scoped threads and returns the results in partition order.
///
/// Partition order is what makes merging trivial: concatenating per-partition
/// OID lists yields a globally sorted candidate list, because partitions
/// cover disjoint, increasing row ranges.
pub fn run_partitions<R, F>(n: usize, threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let ranges = partition_ranges(n, threads.max(1));
    if ranges.is_empty() {
        return Vec::new();
    }
    if ranges.len() == 1 {
        let (start, end) = ranges[0];
        return vec![worker(start, end)];
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(ranges.len());
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let worker = &worker;
        let mut handles = Vec::with_capacity(ranges.len());
        for (start, end) in &ranges {
            let (start, end) = (*start, *end);
            handles.push(scope.spawn(move || worker(start, end)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("mitosis worker panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("missing partition result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_input_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = partition_ranges(n, parts);
                let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // Ranges are contiguous and ordered.
                let mut expected_start = 0;
                for (s, e) in &ranges {
                    assert_eq!(*s, expected_start);
                    assert!(e > s);
                    expected_start = *e;
                }
            }
        }
    }

    #[test]
    fn no_more_parts_than_rows() {
        assert_eq!(partition_ranges(3, 8).len(), 3);
        assert!(partition_ranges(0, 8).is_empty());
        assert!(partition_ranges(8, 0).is_empty());
    }

    #[test]
    fn run_partitions_returns_in_order() {
        let results = run_partitions(100, 4, |start, end| (start, end));
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].0, 0);
        assert_eq!(results.last().unwrap().1, 100);
        for window in results.windows(2) {
            assert_eq!(window[0].1, window[1].0);
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let results = run_partitions(10, 1, |start, end| end - start);
        assert_eq!(results, vec![10]);
    }

    #[test]
    fn empty_input_yields_no_partitions() {
        let results: Vec<usize> = run_partitions(0, 4, |_, _| unreachable!());
        assert!(results.is_empty());
    }
}
