//! Parallel fetch join: the OID list is partitioned; each thread fetches its
//! slice; results are concatenated in order.

use super::partition::run_partitions;
use crate::sequential;
use ocelot_storage::Oid;

/// Parallel fetch of an integer column.
pub fn par_fetch_i32(column: &[i32], oids: &[Oid], threads: usize) -> Vec<i32> {
    let parts = run_partitions(oids.len(), threads, |start, end| {
        sequential::fetch_i32(column, &oids[start..end])
    });
    parts.into_iter().flatten().collect()
}

/// Parallel fetch of a float column.
pub fn par_fetch_f32(column: &[f32], oids: &[Oid], threads: usize) -> Vec<f32> {
    let parts = run_partitions(oids.len(), threads, |start, end| {
        sequential::fetch_f32(column, &oids[start..end])
    });
    parts.into_iter().flatten().collect()
}

/// Parallel fetch of an OID column.
pub fn par_fetch_oid(column: &[Oid], oids: &[Oid], threads: usize) -> Vec<Oid> {
    let parts = run_partitions(oids.len(), threads, |start, end| {
        sequential::fetch_oid(column, &oids[start..end])
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_fetch() {
        let column: Vec<i32> = (0..10_000).map(|i| i * 3).collect();
        let oids: Vec<Oid> = (0..5_000).map(|i| ((i * 7) % 10_000) as Oid).collect();
        for threads in [1, 3, 8] {
            assert_eq!(
                par_fetch_i32(&column, &oids, threads),
                sequential::fetch_i32(&column, &oids)
            );
        }
    }

    #[test]
    fn float_and_oid_variants() {
        let reals: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
        let oids: Vec<Oid> = vec![999, 0, 500];
        assert_eq!(par_fetch_f32(&reals, &oids, 2), vec![249.75, 0.0, 125.0]);
        let col: Vec<Oid> = (0..100).rev().collect();
        assert_eq!(par_fetch_oid(&col, &[0, 99], 2), vec![99, 0]);
    }

    #[test]
    fn empty_oids() {
        assert!(par_fetch_i32(&[1, 2, 3], &[], 4).is_empty());
    }
}
