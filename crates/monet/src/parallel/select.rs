//! Parallel selection: each partition scans its slice, the per-partition
//! candidate lists are concatenated (they are disjoint and ordered).

use super::partition::run_partitions;
use crate::sequential;
use ocelot_storage::Oid;

fn offset_and_concat(parts: Vec<Vec<Oid>>) -> Vec<Oid> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Parallel inclusive range selection over an `i32` column.
pub fn par_select_range_i32(column: &[i32], low: i32, high: i32, threads: usize) -> Vec<Oid> {
    let parts = run_partitions(column.len(), threads, |start, end| {
        let mut local = Vec::new();
        for (offset, value) in column[start..end].iter().enumerate() {
            if *value >= low && *value <= high {
                local.push((start + offset) as Oid);
            }
        }
        local
    });
    offset_and_concat(parts)
}

/// Parallel inclusive range selection over an `f32` column.
pub fn par_select_range_f32(column: &[f32], low: f32, high: f32, threads: usize) -> Vec<Oid> {
    let parts = run_partitions(column.len(), threads, |start, end| {
        let mut local = Vec::new();
        for (offset, value) in column[start..end].iter().enumerate() {
            if *value >= low && *value <= high {
                local.push((start + offset) as Oid);
            }
        }
        local
    });
    offset_and_concat(parts)
}

/// Parallel equality selection over an `i32` column.
pub fn par_select_eq_i32(column: &[i32], needle: i32, threads: usize) -> Vec<Oid> {
    let parts = run_partitions(column.len(), threads, |start, end| {
        let mut local = Vec::new();
        for (offset, value) in column[start..end].iter().enumerate() {
            if *value == needle {
                local.push((start + offset) as Oid);
            }
        }
        local
    });
    offset_and_concat(parts)
}

/// Parallel range selection restricted to a candidate list. The candidate
/// list (not the column) is partitioned, so the work scales with the number
/// of surviving rows.
pub fn par_select_range_i32_cand(
    column: &[i32],
    candidates: &[Oid],
    low: i32,
    high: i32,
    threads: usize,
) -> Vec<Oid> {
    let parts = run_partitions(candidates.len(), threads, |start, end| {
        sequential::select_range_i32_cand(column, &candidates[start..end], low, high)
    });
    offset_and_concat(parts)
}

/// Parallel float range selection restricted to a candidate list.
pub fn par_select_range_f32_cand(
    column: &[f32],
    candidates: &[Oid],
    low: f32,
    high: f32,
    threads: usize,
) -> Vec<Oid> {
    let parts = run_partitions(candidates.len(), threads, |start, end| {
        sequential::select_range_f32_cand(column, &candidates[start..end], low, high)
    });
    offset_and_concat(parts)
}

/// Parallel equality selection restricted to a candidate list.
pub fn par_select_eq_i32_cand(
    column: &[i32],
    candidates: &[Oid],
    needle: i32,
    threads: usize,
) -> Vec<Oid> {
    let parts = run_partitions(candidates.len(), threads, |start, end| {
        sequential::select_eq_i32_cand(column, &candidates[start..end], needle)
    });
    offset_and_concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    fn column(n: usize) -> Vec<i32> {
        (0..n).map(|i| ((i * 37 + 11) % 1000) as i32).collect()
    }

    #[test]
    fn matches_sequential_range_selection() {
        let col = column(10_000);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                par_select_range_i32(&col, 100, 300, threads),
                sequential::select_range_i32(&col, 100, 300),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matches_sequential_eq_selection() {
        let col = column(5_000);
        assert_eq!(par_select_eq_i32(&col, 11, 4), sequential::select_eq_i32(&col, 11));
    }

    #[test]
    fn matches_sequential_float_selection() {
        let col: Vec<f32> = (0..5_000).map(|i| (i % 97) as f32 * 0.5).collect();
        assert_eq!(
            par_select_range_f32(&col, 10.0, 20.0, 4),
            sequential::select_range_f32(&col, 10.0, 20.0)
        );
    }

    #[test]
    fn candidate_variants_match_sequential() {
        let col = column(5_000);
        let cands = sequential::select_range_i32(&col, 0, 500);
        assert_eq!(
            par_select_range_i32_cand(&col, &cands, 100, 300, 4),
            sequential::select_range_i32_cand(&col, &cands, 100, 300)
        );
        assert_eq!(
            par_select_eq_i32_cand(&col, &cands, 11, 4),
            sequential::select_eq_i32_cand(&col, &cands, 11)
        );
        let reals: Vec<f32> = col.iter().map(|v| *v as f32).collect();
        assert_eq!(
            par_select_range_f32_cand(&reals, &cands, 100.0, 300.0, 4),
            sequential::select_range_f32_cand(&reals, &cands, 100.0, 300.0)
        );
    }

    #[test]
    fn results_are_sorted_by_oid() {
        let col = column(20_000);
        let result = par_select_range_i32(&col, 0, 999, 8);
        assert!(result.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(result.len(), col.len());
    }

    #[test]
    fn empty_column_is_fine() {
        assert!(par_select_range_i32(&[], 0, 10, 4).is_empty());
    }
}
