//! Parallel sorting: partitions are sorted independently in parallel and the
//! sorted runs are merged — the quick/merge-sort combination MonetDB uses,
//! parallelised with the mitosis pattern.

use super::partition::run_partitions;
use ocelot_storage::Oid;

fn merge_runs_by_key<K: Copy + PartialOrd, F: Fn(Oid) -> K>(
    runs: Vec<Vec<Oid>>,
    key: F,
) -> Vec<Oid> {
    let mut merged: Vec<Oid> = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
    let mut runs = runs;
    while runs.len() > 1 {
        let mut next_round = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                None => next_round.push(a),
                Some(b) => {
                    let mut out = Vec::with_capacity(a.len() + b.len());
                    let (mut i, mut j) = (0, 0);
                    while i < a.len() && j < b.len() {
                        if key(a[i]) <= key(b[j]) {
                            out.push(a[i]);
                            i += 1;
                        } else {
                            out.push(b[j]);
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&a[i..]);
                    out.extend_from_slice(&b[j..]);
                    next_round.push(out);
                }
            }
        }
        runs = next_round;
    }
    if let Some(run) = runs.pop() {
        merged = run;
    }
    merged
}

/// Parallel ascending sort of an integer column. Returns
/// `(sorted_values, order)` like the sequential variant.
pub fn par_sort_i32(column: &[i32], threads: usize) -> (Vec<i32>, Vec<Oid>) {
    let runs = run_partitions(column.len(), threads, |start, end| {
        let mut order: Vec<Oid> = (start as u32..end as u32).collect();
        order.sort_by_key(|&oid| column[oid as usize]);
        order
    });
    let order = merge_runs_by_key(runs, |oid| column[oid as usize]);
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

/// Parallel ascending sort of a float column (IEEE total order).
pub fn par_sort_f32(column: &[f32], threads: usize) -> (Vec<f32>, Vec<Oid>) {
    let runs = run_partitions(column.len(), threads, |start, end| {
        let mut order: Vec<Oid> = (start as u32..end as u32).collect();
        order.sort_by(|&a, &b| column[a as usize].total_cmp(&column[b as usize]));
        order
    });
    // total_cmp and <= agree for the non-NaN data the engine produces.
    let order = merge_runs_by_key(runs, |oid| column[oid as usize]);
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential;

    #[test]
    fn matches_sequential_values() {
        let column: Vec<i32> = (0..10_000).map(|i| ((i * 73 + 19) % 4001) - 2000).collect();
        let (seq_sorted, _) = sequential::sort_i32(&column);
        for threads in [1, 2, 4, 5] {
            let (par_sorted, par_order) = par_sort_i32(&column, threads);
            assert_eq!(par_sorted, seq_sorted, "threads={threads}");
            // The order column is a valid permutation producing the sorted output.
            let mut check: Vec<bool> = vec![false; column.len()];
            for (pos, oid) in par_order.iter().enumerate() {
                assert_eq!(column[*oid as usize], par_sorted[pos]);
                assert!(!check[*oid as usize], "oid {oid} repeated");
                check[*oid as usize] = true;
            }
        }
    }

    #[test]
    fn float_sort_matches_sequential() {
        let column: Vec<f32> =
            (0..5_000).map(|i| ((i * 31 + 7) % 999) as f32 * 0.25 - 50.0).collect();
        let (seq_sorted, _) = sequential::sort_f32(&column);
        let (par_sorted, _) = par_sort_f32(&column, 4);
        assert_eq!(par_sorted, seq_sorted);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let asc: Vec<i32> = (0..1000).collect();
        let desc: Vec<i32> = (0..1000).rev().collect();
        assert_eq!(par_sort_i32(&asc, 4).0, asc);
        assert_eq!(par_sort_i32(&desc, 4).0, asc);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(par_sort_i32(&[], 4), (vec![], vec![]));
        assert_eq!(par_sort_i32(&[3], 4), (vec![3], vec![0]));
        assert_eq!(par_sort_i32(&[2, 1], 4).0, vec![1, 2]);
    }
}
