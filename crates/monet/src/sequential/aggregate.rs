//! Sequential aggregation operators: ungrouped reductions and grouped
//! aggregates over a dense group-ID column.

/// Sum of a float column (accumulated in `f64`, returned as the four-byte
/// `f32` the engine's type system mandates).
pub fn sum_f32(values: &[f32]) -> f32 {
    values.iter().map(|v| *v as f64).sum::<f64>() as f32
}

/// Sum of an integer column, accumulated in `i64` to avoid overflow.
pub fn sum_i32(values: &[i32]) -> i64 {
    values.iter().map(|v| *v as i64).sum()
}

/// Minimum of an integer column (`None` for an empty column).
pub fn min_i32(values: &[i32]) -> Option<i32> {
    values.iter().copied().min()
}

/// Maximum of an integer column.
pub fn max_i32(values: &[i32]) -> Option<i32> {
    values.iter().copied().max()
}

/// Minimum of a float column.
pub fn min_f32(values: &[f32]) -> Option<f32> {
    values.iter().copied().reduce(f32::min)
}

/// Maximum of a float column.
pub fn max_f32(values: &[f32]) -> Option<f32> {
    values.iter().copied().reduce(f32::max)
}

/// Row count.
pub fn count(values_len: usize) -> i64 {
    values_len as i64
}

/// Arithmetic mean of a float column (`None` for an empty column).
pub fn avg_f32(values: &[f32]) -> Option<f32> {
    if values.is_empty() {
        None
    } else {
        Some((values.iter().map(|v| *v as f64).sum::<f64>() / values.len() as f64) as f32)
    }
}

/// Per-group sums of a float column. `gids[i]` assigns row `i` to a dense
/// group in `0..num_groups`.
pub fn grouped_sum_f32(values: &[f32], gids: &[u32], num_groups: usize) -> Vec<f32> {
    assert_eq!(values.len(), gids.len(), "grouped_sum_f32: length mismatch");
    let mut sums = vec![0.0f64; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        sums[*gid as usize] += *value as f64;
    }
    sums.into_iter().map(|s| s as f32).collect()
}

/// Per-group row counts.
pub fn grouped_count(gids: &[u32], num_groups: usize) -> Vec<i64> {
    let mut counts = vec![0i64; num_groups];
    for gid in gids {
        counts[*gid as usize] += 1;
    }
    counts
}

/// Per-group sums of an integer column.
pub fn grouped_sum_i32(values: &[i32], gids: &[u32], num_groups: usize) -> Vec<i64> {
    assert_eq!(values.len(), gids.len(), "grouped_sum_i32: length mismatch");
    let mut sums = vec![0i64; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        sums[*gid as usize] += *value as i64;
    }
    sums
}

/// Per-group minima of a float column (`f32::INFINITY` for empty groups).
pub fn grouped_min_f32(values: &[f32], gids: &[u32], num_groups: usize) -> Vec<f32> {
    assert_eq!(values.len(), gids.len(), "grouped_min_f32: length mismatch");
    let mut mins = vec![f32::INFINITY; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        let slot = &mut mins[*gid as usize];
        if *value < *slot {
            *slot = *value;
        }
    }
    mins
}

/// Per-group maxima of a float column (`f32::NEG_INFINITY` for empty groups).
pub fn grouped_max_f32(values: &[f32], gids: &[u32], num_groups: usize) -> Vec<f32> {
    assert_eq!(values.len(), gids.len(), "grouped_max_f32: length mismatch");
    let mut maxs = vec![f32::NEG_INFINITY; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        let slot = &mut maxs[*gid as usize];
        if *value > *slot {
            *slot = *value;
        }
    }
    maxs
}

/// Per-group minima of an integer column (`i32::MAX` for empty groups).
pub fn grouped_min_i32(values: &[i32], gids: &[u32], num_groups: usize) -> Vec<i32> {
    assert_eq!(values.len(), gids.len(), "grouped_min_i32: length mismatch");
    let mut mins = vec![i32::MAX; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        let slot = &mut mins[*gid as usize];
        if *value < *slot {
            *slot = *value;
        }
    }
    mins
}

/// Per-group maxima of an integer column (`i32::MIN` for empty groups).
pub fn grouped_max_i32(values: &[i32], gids: &[u32], num_groups: usize) -> Vec<i32> {
    assert_eq!(values.len(), gids.len(), "grouped_max_i32: length mismatch");
    let mut maxs = vec![i32::MIN; num_groups];
    for (value, gid) in values.iter().zip(gids.iter()) {
        let slot = &mut maxs[*gid as usize];
        if *value > *slot {
            *slot = *value;
        }
    }
    maxs
}

/// Per-group averages of a float column (`0.0` for empty groups).
pub fn grouped_avg_f32(values: &[f32], gids: &[u32], num_groups: usize) -> Vec<f32> {
    let sums = grouped_sum_f32(values, gids, num_groups);
    let counts = grouped_count(gids, num_groups);
    sums.iter()
        .zip(counts.iter())
        .map(|(s, c)| if *c == 0 { 0.0 } else { (*s as f64 / *c as f64) as f32 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungrouped_reductions() {
        let ints = vec![3, -1, 7, 0];
        assert_eq!(sum_i32(&ints), 9);
        assert_eq!(min_i32(&ints), Some(-1));
        assert_eq!(max_i32(&ints), Some(7));
        assert_eq!(count(ints.len()), 4);

        let reals = vec![1.5f32, 2.5, -1.0];
        assert_eq!(sum_f32(&reals), 3.0);
        assert_eq!(min_f32(&reals), Some(-1.0));
        assert_eq!(max_f32(&reals), Some(2.5));
        assert_eq!(avg_f32(&reals), Some(1.0));
    }

    #[test]
    fn empty_reductions() {
        assert_eq!(sum_f32(&[]), 0.0);
        assert_eq!(min_i32(&[]), None);
        assert_eq!(max_f32(&[]), None);
        assert_eq!(avg_f32(&[]), None);
        assert_eq!(count(0), 0);
    }

    #[test]
    fn grouped_aggregates() {
        let values = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        let gids = vec![0u32, 1, 0, 1, 2];
        assert_eq!(grouped_sum_f32(&values, &gids, 3), vec![4.0, 6.0, 5.0]);
        assert_eq!(grouped_count(&gids, 3), vec![2, 2, 1]);
        assert_eq!(grouped_min_f32(&values, &gids, 3), vec![1.0, 2.0, 5.0]);
        assert_eq!(grouped_max_f32(&values, &gids, 3), vec![3.0, 4.0, 5.0]);
        assert_eq!(grouped_avg_f32(&values, &gids, 3), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn grouped_integer_aggregates() {
        let values = vec![5, -2, 8, 1];
        let gids = vec![1u32, 0, 1, 0];
        assert_eq!(grouped_sum_i32(&values, &gids, 2), vec![-1, 13]);
        assert_eq!(grouped_min_i32(&values, &gids, 2), vec![-2, 5]);
        assert_eq!(grouped_max_i32(&values, &gids, 2), vec![1, 8]);
    }

    #[test]
    fn empty_groups_get_identity_values() {
        let values: Vec<f32> = vec![1.0];
        let gids = vec![2u32];
        assert_eq!(grouped_sum_f32(&values, &gids, 4), vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(grouped_min_f32(&values, &gids, 4)[0], f32::INFINITY);
        assert_eq!(grouped_max_f32(&values, &gids, 4)[1], f32::NEG_INFINITY);
        assert_eq!(grouped_avg_f32(&values, &gids, 4)[3], 0.0);
    }

    #[test]
    fn float_sum_uses_double_accumulator() {
        // 10 million additions of 0.1 would drift badly in pure f32.
        let values = vec![0.1f32; 1_000_000];
        let total = sum_f32(&values);
        assert!((total - 100_000.0).abs() < 1.0, "got {total}");
    }
}
