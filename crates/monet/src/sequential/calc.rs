//! Sequential arithmetic map operators (MonetDB's `batcalc` module).
//!
//! TPC-H expressions such as `l_extendedprice * (1 - l_discount)` are
//! evaluated column-at-a-time by these element-wise kernels.

use ocelot_storage::types::days_to_date;

/// Element-wise `a * b` over float columns.
pub fn mul_f32(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "mul_f32: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).collect()
}

/// Element-wise `a + b` over float columns.
pub fn add_f32(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add_f32: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Element-wise `a - b` over float columns.
pub fn sub_f32(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub_f32: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `constant - a` (e.g. `1 - l_discount`).
pub fn const_minus_f32(constant: f32, a: &[f32]) -> Vec<f32> {
    a.iter().map(|x| constant - x).collect()
}

/// Element-wise `constant + a` (e.g. `1 + l_tax`).
pub fn const_plus_f32(constant: f32, a: &[f32]) -> Vec<f32> {
    a.iter().map(|x| constant + x).collect()
}

/// Element-wise `a * constant`.
pub fn mul_const_f32(a: &[f32], constant: f32) -> Vec<f32> {
    a.iter().map(|x| x * constant).collect()
}

/// Casts an integer column to float.
pub fn cast_i32_f32(a: &[i32]) -> Vec<f32> {
    a.iter().map(|x| *x as f32).collect()
}

/// Extracts the calendar year from a date column stored as day numbers.
pub fn extract_year(days: &[i32]) -> Vec<i32> {
    days.iter().map(|d| days_to_date(*d).0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_storage::types::date_to_days;

    #[test]
    fn arithmetic_maps() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![4.0f32, 5.0, 6.0];
        assert_eq!(mul_f32(&a, &b), vec![4.0, 10.0, 18.0]);
        assert_eq!(add_f32(&a, &b), vec![5.0, 7.0, 9.0]);
        assert_eq!(sub_f32(&b, &a), vec![3.0, 3.0, 3.0]);
        assert_eq!(const_minus_f32(1.0, &a), vec![0.0, -1.0, -2.0]);
        assert_eq!(const_plus_f32(1.0, &a), vec![2.0, 3.0, 4.0]);
        assert_eq!(mul_const_f32(&a, 2.0), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn casts_and_year_extraction() {
        assert_eq!(cast_i32_f32(&[1, -2]), vec![1.0, -2.0]);
        let days = vec![date_to_days(1994, 3, 15), date_to_days(1998, 12, 31)];
        assert_eq!(extract_year(&days), vec![1994, 1998]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        mul_f32(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_inputs() {
        assert!(mul_f32(&[], &[]).is_empty());
        assert!(extract_year(&[]).is_empty());
    }
}
