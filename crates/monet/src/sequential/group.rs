//! Sequential group-by: assign a dense group ID to every tuple.
//!
//! MonetDB's grouping operator produces "a column that assigns a dense group
//! ID to each tuple" (paper §4.1.6); multi-column grouping refines an
//! existing grouping with an additional column.

use ocelot_storage::Oid;
use std::collections::HashMap;

/// Result of a grouping operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupResult {
    /// Dense group id per input row.
    pub gids: Vec<u32>,
    /// Number of distinct groups.
    pub num_groups: usize,
    /// For every group, the OID of the first row belonging to it (used to
    /// project the grouping key values into the result set).
    pub representatives: Vec<Oid>,
}

impl GroupResult {
    /// A grouping that puts every row into a single group (used for global
    /// aggregates expressed through the grouped code path).
    pub fn single_group(rows: usize) -> GroupResult {
        GroupResult {
            gids: vec![0; rows],
            num_groups: if rows == 0 { 0 } else { 1 },
            representatives: if rows == 0 { vec![] } else { vec![0] },
        }
    }
}

/// Groups by a single integer column. Group ids are assigned in order of
/// first appearance.
pub fn group_by_i32(column: &[i32]) -> GroupResult {
    let mut mapping: HashMap<i32, u32> = HashMap::new();
    let mut gids = Vec::with_capacity(column.len());
    let mut representatives = Vec::new();
    for (row, value) in column.iter().enumerate() {
        let next_id = mapping.len() as u32;
        let gid = *mapping.entry(*value).or_insert_with(|| {
            representatives.push(row as Oid);
            next_id
        });
        gids.push(gid);
    }
    GroupResult { gids, num_groups: mapping.len(), representatives }
}

/// Refines an existing grouping with an additional integer column — the
/// recursive construction the paper uses for multi-column grouping
/// (§4.1.6). Rows end up in the same group iff they agreed on every column
/// grouped so far.
pub fn group_refine_i32(column: &[i32], previous: &GroupResult) -> GroupResult {
    assert_eq!(column.len(), previous.gids.len(), "group_refine_i32: length mismatch");
    let mut mapping: HashMap<(u32, i32), u32> = HashMap::new();
    let mut gids = Vec::with_capacity(column.len());
    let mut representatives = Vec::new();
    for (row, value) in column.iter().enumerate() {
        let key = (previous.gids[row], *value);
        let next_id = mapping.len() as u32;
        let gid = *mapping.entry(key).or_insert_with(|| {
            representatives.push(row as Oid);
            next_id
        });
        gids.push(gid);
    }
    GroupResult { gids, num_groups: mapping.len(), representatives }
}

/// Groups by several integer columns at once by repeated refinement.
pub fn group_by_columns(columns: &[&[i32]]) -> GroupResult {
    match columns.split_first() {
        None => GroupResult { gids: vec![], num_groups: 0, representatives: vec![] },
        Some((first, rest)) => {
            let mut result = group_by_i32(first);
            for column in rest {
                result = group_refine_i32(column, &result);
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_column_grouping() {
        let col = vec![5, 3, 5, 7, 3];
        let result = group_by_i32(&col);
        assert_eq!(result.num_groups, 3);
        assert_eq!(result.gids, vec![0, 1, 0, 2, 1]);
        assert_eq!(result.representatives, vec![0, 1, 3]);
    }

    #[test]
    fn refinement_splits_groups() {
        let a = vec![1, 1, 2, 2];
        let b = vec![10, 20, 10, 10];
        let first = group_by_i32(&a);
        let refined = group_refine_i32(&b, &first);
        assert_eq!(refined.num_groups, 3);
        // Rows 2 and 3 agree on both columns; rows 0 and 1 split on b.
        assert_eq!(refined.gids[2], refined.gids[3]);
        assert_ne!(refined.gids[0], refined.gids[1]);
    }

    #[test]
    fn multi_column_grouping_matches_pairwise_equality() {
        let a = vec![1, 1, 1, 2, 2, 1];
        let b = vec![7, 7, 8, 7, 7, 7];
        let result = group_by_columns(&[&a, &b]);
        for i in 0..a.len() {
            for j in 0..a.len() {
                let same_keys = a[i] == a[j] && b[i] == b[j];
                assert_eq!(same_keys, result.gids[i] == result.gids[j], "rows {i},{j}");
            }
        }
        assert_eq!(result.num_groups, 3);
    }

    #[test]
    fn representatives_point_to_first_occurrence() {
        let col = vec![4, 4, 9];
        let result = group_by_i32(&col);
        assert_eq!(result.representatives, vec![0, 2]);
        assert_eq!(col[result.representatives[1] as usize], 9);
    }

    #[test]
    fn empty_and_single_group() {
        let empty = group_by_i32(&[]);
        assert_eq!(empty.num_groups, 0);
        assert!(empty.gids.is_empty());

        let single = GroupResult::single_group(4);
        assert_eq!(single.num_groups, 1);
        assert_eq!(single.gids, vec![0, 0, 0, 0]);
        assert_eq!(GroupResult::single_group(0).num_groups, 0);
    }
}
