//! Sequential join operators: hash equi-join, PK-FK join, semi/anti join and
//! a nested-loop theta join.

use crate::hash_table::MonetHashTable;
use ocelot_storage::Oid;

/// Hash equi-join: returns every matching `(left_oid, right_oid)` pair as a
/// pair of aligned OID columns. The hash table is built over the right
/// (usually smaller) input.
pub fn hash_join_i32(left: &[i32], right: &[i32]) -> (Vec<Oid>, Vec<Oid>) {
    let table = MonetHashTable::build(right);
    let mut left_out = Vec::new();
    let mut right_out = Vec::new();
    for (row, key) in left.iter().enumerate() {
        for right_row in table.probe(*key) {
            left_out.push(row as Oid);
            right_out.push(right_row);
        }
    }
    (left_out, right_out)
}

/// PK-FK join through a prebuilt hash table: for every foreign-key value the
/// OID of its (unique) primary-key partner. Rows without a partner are
/// dropped, and their positions are returned alongside the matches.
pub fn pkfk_join_i32(foreign_keys: &[i32], table: &MonetHashTable) -> (Vec<Oid>, Vec<Oid>) {
    let mut fk_oids = Vec::with_capacity(foreign_keys.len());
    let mut pk_oids = Vec::with_capacity(foreign_keys.len());
    for (row, key) in foreign_keys.iter().enumerate() {
        if let Some(pk_row) = table.find_first(*key) {
            fk_oids.push(row as Oid);
            pk_oids.push(pk_row);
        }
    }
    (fk_oids, pk_oids)
}

/// Semi join: the OIDs of left rows whose key occurs at least once in
/// `right` (SQL `EXISTS` / `IN`).
pub fn semi_join_i32(left: &[i32], right: &[i32]) -> Vec<Oid> {
    let table = MonetHashTable::build(right);
    left.iter()
        .enumerate()
        .filter(|(_, key)| table.contains(**key))
        .map(|(row, _)| row as Oid)
        .collect()
}

/// Anti join: the OIDs of left rows whose key does **not** occur in `right`
/// (SQL `NOT EXISTS` / `NOT IN`).
pub fn anti_join_i32(left: &[i32], right: &[i32]) -> Vec<Oid> {
    let table = MonetHashTable::build(right);
    left.iter()
        .enumerate()
        .filter(|(_, key)| !table.contains(**key))
        .map(|(row, _)| row as Oid)
        .collect()
}

/// Nested-loop theta join: every `(left_oid, right_oid)` pair for which
/// `predicate(left_value, right_value)` holds. Used for the non-equality
/// join predicates that the paper's nested-loop kernel handles (§4.1.5).
pub fn nested_loop_join_i32<F>(left: &[i32], right: &[i32], predicate: F) -> (Vec<Oid>, Vec<Oid>)
where
    F: Fn(i32, i32) -> bool,
{
    let mut left_out = Vec::new();
    let mut right_out = Vec::new();
    for (l, lv) in left.iter().enumerate() {
        for (r, rv) in right.iter().enumerate() {
            if predicate(*lv, *rv) {
                left_out.push(l as Oid);
                right_out.push(r as Oid);
            }
        }
    }
    (left_out, right_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_join_produces_all_pairs() {
        let left = vec![1, 2, 3, 2];
        let right = vec![2, 4, 2];
        let (l, r) = hash_join_i32(&left, &right);
        let mut pairs: Vec<(Oid, Oid)> = l.into_iter().zip(r).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (3, 0), (3, 2)]);
    }

    #[test]
    fn pkfk_join_aligns_with_foreign_keys() {
        let pk = vec![10, 20, 30];
        let table = MonetHashTable::build(&pk);
        let fk = vec![30, 10, 10, 99, 20];
        let (fk_oids, pk_oids) = pkfk_join_i32(&fk, &table);
        assert_eq!(fk_oids, vec![0, 1, 2, 4]);
        assert_eq!(pk_oids, vec![2, 0, 0, 1]);
    }

    #[test]
    fn semi_and_anti_join_partition_the_input() {
        let left = vec![1, 2, 3, 4, 5];
        let right = vec![2, 4, 6];
        let semi = semi_join_i32(&left, &right);
        let anti = anti_join_i32(&left, &right);
        assert_eq!(semi, vec![1, 3]);
        assert_eq!(anti, vec![0, 2, 4]);
        assert_eq!(semi.len() + anti.len(), left.len());
    }

    #[test]
    fn nested_loop_theta_join() {
        let left = vec![1, 5];
        let right = vec![3, 4];
        let (l, r) = nested_loop_join_i32(&left, &right, |a, b| a < b);
        let pairs: Vec<(Oid, Oid)> = l.into_iter().zip(r).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn joins_with_empty_inputs() {
        let (l, r) = hash_join_i32(&[], &[1, 2]);
        assert!(l.is_empty() && r.is_empty());
        let (l, r) = hash_join_i32(&[1, 2], &[]);
        assert!(l.is_empty() && r.is_empty());
        assert!(semi_join_i32(&[1], &[]).is_empty());
        assert_eq!(anti_join_i32(&[1], &[]), vec![0]);
    }
}
