//! Sequential (single-core) baseline operators — the paper's "MS"
//! configuration.
//!
//! Every operator is a plain function over column slices; results are
//! freshly allocated vectors. Selections return candidate lists of
//! qualifying OIDs (MonetDB's representation — the paper contrasts this with
//! Ocelot's bitmap representation in §5.2.1).

pub mod aggregate;
pub mod calc;
pub mod group;
pub mod join;
pub mod project;
pub mod select;
pub mod sort;

pub use aggregate::*;
pub use calc::*;
pub use group::*;
pub use join::*;
pub use project::*;
pub use select::*;
pub use sort::*;
