//! Sequential fetch join (projection): materialise column values for a list
//! of tuple IDs. This is MonetDB's `leftfetchjoin`, "one of the most
//! frequently used operators" (paper §5.2.2).

use ocelot_storage::Oid;

/// Fetches `column[oid]` for every OID in `oids` (integer column).
pub fn fetch_i32(column: &[i32], oids: &[Oid]) -> Vec<i32> {
    oids.iter().map(|&oid| column[oid as usize]).collect()
}

/// Fetches `column[oid]` for every OID in `oids` (float column).
pub fn fetch_f32(column: &[f32], oids: &[Oid]) -> Vec<f32> {
    oids.iter().map(|&oid| column[oid as usize]).collect()
}

/// Fetches `column[oid]` for every OID in `oids` (OID column — used when
/// composing projections, e.g. following a join index).
pub fn fetch_oid(column: &[Oid], oids: &[Oid]) -> Vec<Oid> {
    oids.iter().map(|&oid| column[oid as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_reorders_and_duplicates() {
        let col = vec![10, 20, 30, 40];
        assert_eq!(fetch_i32(&col, &[3, 0, 0, 2]), vec![40, 10, 10, 30]);
    }

    #[test]
    fn fetch_f32_and_oid() {
        let reals = vec![0.5, 1.5, 2.5];
        assert_eq!(fetch_f32(&reals, &[2, 1]), vec![2.5, 1.5]);
        let oids: Vec<Oid> = vec![9, 8, 7];
        assert_eq!(fetch_oid(&oids, &[0, 2]), vec![9, 7]);
    }

    #[test]
    fn empty_oid_list() {
        assert!(fetch_i32(&[1, 2, 3], &[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_oid_panics() {
        fetch_i32(&[1, 2], &[5]);
    }
}
