//! Sequential selection: scan a column, return the OIDs of qualifying rows.

use ocelot_storage::Oid;

/// Inclusive range selection over an `i32` column: rows with
/// `low <= value <= high`.
pub fn select_range_i32(column: &[i32], low: i32, high: i32) -> Vec<Oid> {
    let mut out = Vec::new();
    for (row, value) in column.iter().enumerate() {
        if *value >= low && *value <= high {
            out.push(row as Oid);
        }
    }
    out
}

/// Inclusive range selection over an `f32` column.
pub fn select_range_f32(column: &[f32], low: f32, high: f32) -> Vec<Oid> {
    let mut out = Vec::new();
    for (row, value) in column.iter().enumerate() {
        if *value >= low && *value <= high {
            out.push(row as Oid);
        }
    }
    out
}

/// Equality selection over an `i32` column.
pub fn select_eq_i32(column: &[i32], needle: i32) -> Vec<Oid> {
    let mut out = Vec::new();
    for (row, value) in column.iter().enumerate() {
        if *value == needle {
            out.push(row as Oid);
        }
    }
    out
}

/// Range selection restricted to a candidate list (the second and later
/// predicates of a conjunction run over the survivors of the previous one).
pub fn select_range_i32_cand(column: &[i32], candidates: &[Oid], low: i32, high: i32) -> Vec<Oid> {
    let mut out = Vec::new();
    for &row in candidates {
        let value = column[row as usize];
        if value >= low && value <= high {
            out.push(row);
        }
    }
    out
}

/// Range selection over an `f32` column restricted to a candidate list.
pub fn select_range_f32_cand(column: &[f32], candidates: &[Oid], low: f32, high: f32) -> Vec<Oid> {
    let mut out = Vec::new();
    for &row in candidates {
        let value = column[row as usize];
        if value >= low && value <= high {
            out.push(row);
        }
    }
    out
}

/// Equality selection restricted to a candidate list.
pub fn select_eq_i32_cand(column: &[i32], candidates: &[Oid], needle: i32) -> Vec<Oid> {
    let mut out = Vec::new();
    for &row in candidates {
        if column[row as usize] == needle {
            out.push(row);
        }
    }
    out
}

/// Inequality (`!=`) selection restricted to a candidate list.
pub fn select_ne_i32_cand(column: &[i32], candidates: &[Oid], needle: i32) -> Vec<Oid> {
    let mut out = Vec::new();
    for &row in candidates {
        if column[row as usize] != needle {
            out.push(row);
        }
    }
    out
}

/// Union of two sorted candidate lists (`value IN (a, b)` style predicates).
pub fn union_oids(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersection of two sorted candidate lists (conjunction of independently
/// evaluated predicates).
pub fn intersect_oids(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_selection_i32() {
        let col = vec![5, 1, 9, 3, 7, 3];
        assert_eq!(select_range_i32(&col, 3, 7), vec![0, 3, 4, 5]);
        assert_eq!(select_range_i32(&col, 100, 200), Vec::<Oid>::new());
        assert_eq!(select_range_i32(&col, i32::MIN, i32::MAX).len(), 6);
    }

    #[test]
    fn range_selection_f32() {
        let col = vec![0.5, 1.5, 2.5];
        assert_eq!(select_range_f32(&col, 1.0, 2.0), vec![1]);
        assert_eq!(select_range_f32(&col, 0.5, 2.5), vec![0, 1, 2]);
    }

    #[test]
    fn equality_selection() {
        let col = vec![2, 3, 2, 2];
        assert_eq!(select_eq_i32(&col, 2), vec![0, 2, 3]);
        assert_eq!(select_eq_i32(&col, 9), Vec::<Oid>::new());
    }

    #[test]
    fn candidate_restricted_selections() {
        let col = vec![5, 1, 9, 3, 7, 3];
        let cands = vec![0, 2, 3, 5];
        assert_eq!(select_range_i32_cand(&col, &cands, 3, 7), vec![0, 3, 5]);
        assert_eq!(select_eq_i32_cand(&col, &cands, 3), vec![3, 5]);
        assert_eq!(select_ne_i32_cand(&col, &cands, 3), vec![0, 2]);
        let reals = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        assert_eq!(select_range_f32_cand(&reals, &cands, 0.25, 0.65), vec![2, 3, 5]);
    }

    #[test]
    fn union_and_intersection() {
        let a = vec![1, 3, 5, 7];
        let b = vec![2, 3, 6, 7, 9];
        assert_eq!(union_oids(&a, &b), vec![1, 2, 3, 5, 6, 7, 9]);
        assert_eq!(intersect_oids(&a, &b), vec![3, 7]);
        assert_eq!(union_oids(&[], &b), b);
        assert_eq!(intersect_oids(&a, &[]), Vec::<Oid>::new());
    }

    #[test]
    fn empty_column() {
        assert!(select_range_i32(&[], 0, 10).is_empty());
        assert!(select_eq_i32(&[], 0).is_empty());
    }
}
