//! Sequential sorting, "based on quick- and merge-sort" like MonetDB's sort
//! (paper §5.2.7). Sorting returns both the sorted values and the
//! permutation of OIDs that produces it, so dependent columns can be
//! reordered with a fetch join.

use ocelot_storage::Oid;

/// Sorts an integer column ascending. Returns `(sorted_values, order)` where
/// `order[i]` is the OID of the row that ended up at position `i`. The sort
/// is stable, so equal keys keep their original relative order.
pub fn sort_i32(column: &[i32]) -> (Vec<i32>, Vec<Oid>) {
    let mut order: Vec<Oid> = (0..column.len() as u32).collect();
    order.sort_by_key(|&oid| column[oid as usize]);
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

/// Sorts an integer column descending (stable).
pub fn sort_i32_desc(column: &[i32]) -> (Vec<i32>, Vec<Oid>) {
    let mut order: Vec<Oid> = (0..column.len() as u32).collect();
    order.sort_by_key(|&oid| std::cmp::Reverse(column[oid as usize]));
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

/// Sorts a float column ascending using IEEE total ordering (stable).
pub fn sort_f32(column: &[f32]) -> (Vec<f32>, Vec<Oid>) {
    let mut order: Vec<Oid> = (0..column.len() as u32).collect();
    order.sort_by(|&a, &b| column[a as usize].total_cmp(&column[b as usize]));
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

/// Sorts a float column descending (stable).
pub fn sort_f32_desc(column: &[f32]) -> (Vec<f32>, Vec<Oid>) {
    let mut order: Vec<Oid> = (0..column.len() as u32).collect();
    order.sort_by(|&a, &b| column[b as usize].total_cmp(&column[a as usize]));
    let sorted = order.iter().map(|&oid| column[oid as usize]).collect();
    (sorted, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_integer_sort() {
        let col = vec![5, -1, 3, 3, 0];
        let (sorted, order) = sort_i32(&col);
        assert_eq!(sorted, vec![-1, 0, 3, 3, 5]);
        assert_eq!(order.len(), 5);
        for (pos, oid) in order.iter().enumerate() {
            assert_eq!(col[*oid as usize], sorted[pos]);
        }
    }

    #[test]
    fn descending_integer_sort() {
        let (sorted, _) = sort_i32_desc(&[1, 9, 4]);
        assert_eq!(sorted, vec![9, 4, 1]);
    }

    #[test]
    fn stable_for_equal_keys() {
        let col = vec![2, 1, 2, 1];
        let (_, order) = sort_i32(&col);
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn float_sorts() {
        let col = vec![0.5f32, -2.0, 10.0, 0.0];
        let (asc, _) = sort_f32(&col);
        assert_eq!(asc, vec![-2.0, 0.0, 0.5, 10.0]);
        let (desc, _) = sort_f32_desc(&col);
        assert_eq!(desc, vec![10.0, 0.5, 0.0, -2.0]);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(sort_i32(&[]), (vec![], vec![]));
        assert_eq!(sort_i32(&[7]), (vec![7], vec![0]));
    }
}
