//! 128-byte-aligned column storage.
//!
//! The paper had to modify MonetDB's memory management to return 128-byte
//! aligned chunks because the Intel OpenCL SDK issues SSE loads that require
//! it (§4.3). Column payloads in this reproduction are therefore stored in
//! an [`AlignedVec`], a minimal growable buffer whose allocation is always
//! aligned to [`COLUMN_ALIGNMENT`] bytes.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (in bytes) of every column allocation.
pub const COLUMN_ALIGNMENT: usize = 128;

/// A growable, 128-byte-aligned buffer of `Copy` values.
///
/// Only the operations the column store needs are provided: construction
/// from a slice or by repeated `push`, and `Deref` to a slice for reads.
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
    _marker: PhantomData<T>,
}

// SAFETY: AlignedVec owns its allocation exclusively; T: Copy has no
// interior mutability, so sharing and sending follow the same rules as Vec.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Creates an empty vector (no allocation).
    pub fn new() -> Self {
        AlignedVec { ptr: NonNull::dangling(), len: 0, cap: 0, _marker: PhantomData }
    }

    /// Creates a vector with at least `cap` elements of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        if cap > 0 {
            v.grow_to(cap);
        }
        v
    }

    /// Creates a vector holding a copy of `values`.
    pub fn from_slice(values: &[T]) -> Self {
        let mut v = Self::with_capacity(values.len());
        for value in values {
            v.push(*value);
        }
        v
    }

    fn layout(cap: usize) -> Layout {
        let bytes = cap * std::mem::size_of::<T>();
        Layout::from_size_align(bytes.max(1), COLUMN_ALIGNMENT.max(std::mem::align_of::<T>()))
            .expect("invalid aligned layout")
    }

    fn grow_to(&mut self, new_cap: usize) {
        assert!(new_cap >= self.len);
        let new_layout = Self::layout(new_cap);
        // SAFETY: layout is non-zero-sized; the new allocation is copied
        // from the old one before the old one is freed.
        let new_ptr = unsafe { alloc_zeroed(new_layout) as *mut T };
        let new_ptr = NonNull::new(new_ptr).expect("aligned allocation failed");
        if self.cap > 0 {
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// Appends a value, growing geometrically when needed.
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            let new_cap = if self.cap == 0 { 16 } else { self.cap * 2 };
            self.grow_to(new_cap);
        }
        unsafe {
            self.ptr.as_ptr().add(self.len).write(value);
        }
        self.len += 1;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.len == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.len == 0 {
            &mut []
        } else {
            unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
        }
    }

    /// The base address of the allocation (for alignment checks in tests).
    pub fn base_address(&self) -> usize {
        if self.cap == 0 {
            0
        } else {
            self.ptr.as_ptr() as usize
        }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            unsafe {
                dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
            }
        }
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy> From<Vec<T>> for AlignedVec<T> {
    fn from(values: Vec<T>) -> Self {
        Self::from_slice(&values)
    }
}

impl<T: Copy> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for value in iter {
            v.push(value);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocations_are_128_byte_aligned() {
        for n in [1usize, 5, 100, 10_000] {
            let v: AlignedVec<i32> = (0..n as i32).collect();
            assert_eq!(v.base_address() % COLUMN_ALIGNMENT, 0, "n={n}");
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn push_and_read_back() {
        let mut v = AlignedVec::new();
        for i in 0..1000i32 {
            v.push(i * 2);
        }
        assert_eq!(v.len(), 1000);
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 1998);
        assert_eq!(v.as_slice().iter().copied().sum::<i32>(), (0..1000).map(|i| i * 2).sum());
    }

    #[test]
    fn empty_vector_is_safe() {
        let v: AlignedVec<f32> = AlignedVec::new();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
        let c = v.clone();
        assert!(c.is_empty());
    }

    #[test]
    fn from_slice_and_eq() {
        let a = AlignedVec::from_slice(&[1, 2, 3]);
        let b: AlignedVec<i32> = vec![1, 2, 3].into();
        assert_eq!(a, b);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v = AlignedVec::from_slice(&[1.0f32, 2.0, 3.0]);
        v[1] = 9.0;
        assert_eq!(v.as_slice(), &[1.0, 9.0, 3.0]);
    }

    proptest! {
        #[test]
        fn matches_std_vec(values in proptest::collection::vec(any::<i32>(), 0..500)) {
            let aligned = AlignedVec::from_slice(&values);
            prop_assert_eq!(aligned.as_slice(), values.as_slice());
            if !values.is_empty() {
                prop_assert_eq!(aligned.base_address() % COLUMN_ALIGNMENT, 0);
            }
            let cloned = aligned.clone();
            prop_assert_eq!(cloned.as_slice(), values.as_slice());
        }

        #[test]
        fn push_grows_like_vec(values in proptest::collection::vec(any::<f32>(), 0..300)) {
            let mut aligned = AlignedVec::new();
            let mut reference = Vec::new();
            for v in &values {
                aligned.push(*v);
                reference.push(*v);
            }
            prop_assert_eq!(aligned.len(), reference.len());
            for (a, b) in aligned.iter().zip(reference.iter()) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}
