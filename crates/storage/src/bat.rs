//! Binary Association Tables (BATs).
//!
//! MonetDB stores every column as a BAT: a two-column table whose *head*
//! holds (virtual, dense) OIDs and whose *tail* holds the values. This
//! reproduction models the common case the paper relies on — dense heads —
//! so a [`Bat`] is simply a typed value array plus descriptor flags:
//!
//! * `sorted` — tail values are non-decreasing (lets the group-by operator
//!   take its sorted fast path, §4.1.6),
//! * `key`    — tail values are unique (lets joins skip the counting pass,
//!   §4.1.5),
//! * `ocelot_owned` — the flag the paper added to MonetDB's BAT descriptor
//!   (§4.3): while set, the BAT's contents live in a device buffer managed
//!   by Ocelot's Memory Manager and MonetDB must not touch it until an
//!   explicit `sync` hands ownership back.

use crate::alignment::AlignedVec;
use crate::types::{ColumnType, Oid, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared handle to a BAT.
pub type BatRef = Arc<Bat>;

/// Typed tail storage of a BAT.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 32-bit integers (also dates and dictionary codes).
    Int(AlignedVec<i32>),
    /// 32-bit floats.
    Real(AlignedVec<f32>),
    /// Tuple identifiers.
    Oid(AlignedVec<Oid>),
}

impl ColumnData {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Real(v) => v.len(),
            ColumnData::Oid(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A single column (BAT) with MonetDB-style descriptor flags.
#[derive(Debug)]
pub struct Bat {
    name: String,
    ty: ColumnType,
    data: ColumnData,
    sorted: bool,
    key: bool,
    ocelot_owned: AtomicBool,
}

impl Bat {
    /// Creates an integer-typed BAT.
    pub fn from_i32(name: &str, values: Vec<i32>) -> Bat {
        Bat::from_i32_typed(name, values, ColumnType::Int)
    }

    /// Creates an integer-word BAT with an explicit logical type (`Int`,
    /// `Date` or `StrCode`).
    pub fn from_i32_typed(name: &str, values: Vec<i32>, ty: ColumnType) -> Bat {
        assert!(
            ty.is_integer_like() && ty != ColumnType::Oid,
            "from_i32_typed requires an integer-word logical type"
        );
        Bat {
            name: name.to_string(),
            ty,
            data: ColumnData::Int(AlignedVec::from_slice(&values)),
            sorted: false,
            key: false,
            ocelot_owned: AtomicBool::new(false),
        }
    }

    /// Creates a float-typed BAT.
    pub fn from_f32(name: &str, values: Vec<f32>) -> Bat {
        Bat {
            name: name.to_string(),
            ty: ColumnType::Real,
            data: ColumnData::Real(AlignedVec::from_slice(&values)),
            sorted: false,
            key: false,
            ocelot_owned: AtomicBool::new(false),
        }
    }

    /// Creates an OID-typed BAT (e.g. a selection result or join index).
    pub fn from_oids(name: &str, values: Vec<Oid>) -> Bat {
        Bat {
            name: name.to_string(),
            ty: ColumnType::Oid,
            data: ColumnData::Oid(AlignedVec::from_slice(&values)),
            sorted: false,
            key: false,
            ocelot_owned: AtomicBool::new(false),
        }
    }

    /// Marks the BAT as sorted (non-decreasing tail). Consumed by the
    /// group-by operator's sorted fast path.
    pub fn with_sorted(mut self, sorted: bool) -> Bat {
        self.sorted = sorted;
        self
    }

    /// Marks the BAT as a key column (unique tail values). Consumed by the
    /// join operators to skip the result-counting pass.
    pub fn with_key(mut self, key: bool) -> Bat {
        self.key = key;
        self
    }

    /// Wraps the BAT in the shared handle used across the engine.
    pub fn into_ref(self) -> BatRef {
        Arc::new(self)
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical column type.
    pub fn column_type(&self) -> ColumnType {
        self.ty
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the tail is known to be sorted.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Whether the tail is known to hold unique values.
    pub fn is_key(&self) -> bool {
        self.key
    }

    /// The tail storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Integer view of the tail, if this is an integer-word column.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match &self.data {
            ColumnData::Int(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Float view of the tail, if this is a real column.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match &self.data {
            ColumnData::Real(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// OID view of the tail, if this is an OID column.
    pub fn as_oid(&self) -> Option<&[Oid]> {
        match &self.data {
            ColumnData::Oid(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The value at position `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn value_at(&self, idx: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Real(v) => Value::Real(v[idx]),
            ColumnData::Oid(v) => Value::Oid(v[idx]),
        }
    }

    /// Raw 32-bit word at position `idx` (bit pattern, regardless of type).
    pub fn word_at(&self, idx: usize) -> u32 {
        match &self.data {
            ColumnData::Int(v) => v[idx] as u32,
            ColumnData::Real(v) => v[idx].to_bits(),
            ColumnData::Oid(v) => v[idx],
        }
    }

    /// The whole tail as raw 32-bit words (used when uploading to a device
    /// buffer).
    pub fn to_words(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.word_at(i)).collect()
    }

    /// Whether the BAT is currently owned by Ocelot (paper §3.4 / §4.3).
    pub fn is_ocelot_owned(&self) -> bool {
        self.ocelot_owned.load(Ordering::Acquire)
    }

    /// Transfers ownership to Ocelot.
    pub fn set_ocelot_owned(&self, owned: bool) {
        self.ocelot_owned.store(owned, Ordering::Release);
    }
}

impl Clone for Bat {
    fn clone(&self) -> Self {
        Bat {
            name: self.name.clone(),
            ty: self.ty,
            data: self.data.clone(),
            sorted: self.sorted,
            key: self.key,
            ocelot_owned: AtomicBool::new(self.is_ocelot_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors_and_views() {
        let ints = Bat::from_i32("a", vec![3, 1, 2]);
        assert_eq!(ints.column_type(), ColumnType::Int);
        assert_eq!(ints.as_i32(), Some(&[3, 1, 2][..]));
        assert!(ints.as_f32().is_none());
        assert_eq!(ints.len(), 3);

        let reals = Bat::from_f32("b", vec![1.5, 2.5]);
        assert_eq!(reals.column_type(), ColumnType::Real);
        assert_eq!(reals.as_f32(), Some(&[1.5, 2.5][..]));

        let oids = Bat::from_oids("c", vec![0, 1, 2, 3]);
        assert_eq!(oids.column_type(), ColumnType::Oid);
        assert_eq!(oids.as_oid(), Some(&[0, 1, 2, 3][..]));
    }

    #[test]
    fn values_and_words() {
        let bat = Bat::from_f32("x", vec![1.0, -2.0]);
        assert_eq!(bat.value_at(0), Value::Real(1.0));
        assert_eq!(bat.word_at(1), (-2.0f32).to_bits());
        assert_eq!(bat.to_words().len(), 2);

        let ints = Bat::from_i32("y", vec![-1]);
        assert_eq!(ints.word_at(0), (-1i32) as u32);
        assert_eq!(ints.value_at(0), Value::Int(-1));
    }

    #[test]
    fn descriptor_flags() {
        let bat = Bat::from_i32("a", vec![1, 2, 3]).with_sorted(true).with_key(true);
        assert!(bat.is_sorted());
        assert!(bat.is_key());
        assert!(!bat.is_ocelot_owned());
        bat.set_ocelot_owned(true);
        assert!(bat.is_ocelot_owned());
        bat.set_ocelot_owned(false);
        assert!(!bat.is_ocelot_owned());
    }

    #[test]
    fn date_and_strcode_logical_types() {
        let dates = Bat::from_i32_typed("d", vec![100, 200], ColumnType::Date);
        assert_eq!(dates.column_type(), ColumnType::Date);
        let codes = Bat::from_i32_typed("s", vec![0, 1, 0], ColumnType::StrCode);
        assert_eq!(codes.column_type(), ColumnType::StrCode);
    }

    #[test]
    #[should_panic(expected = "integer-word logical type")]
    fn real_logical_type_rejected_for_i32_storage() {
        Bat::from_i32_typed("bad", vec![1], ColumnType::Real);
    }

    #[test]
    fn clone_preserves_flags() {
        let bat = Bat::from_i32("a", vec![1]).with_sorted(true);
        bat.set_ocelot_owned(true);
        let copy = bat.clone();
        assert!(copy.is_sorted());
        assert!(copy.is_ocelot_owned());
        assert_eq!(copy.as_i32(), Some(&[1][..]));
    }

    #[test]
    fn empty_bat() {
        let bat = Bat::from_i32("empty", vec![]);
        assert!(bat.is_empty());
        assert_eq!(bat.to_words(), Vec::<u32>::new());
    }
}
