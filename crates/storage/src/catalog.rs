//! Tables and the catalog.
//!
//! A [`Table`] is a named collection of equally long BATs (one per column),
//! and the [`Catalog`] is the per-database registry of tables plus the
//! string dictionaries their `StrCode` columns were encoded with. The TPC-H
//! generator in `ocelot-tpch` populates a catalog; the query layer resolves
//! `table.column` references against it.

use crate::bat::BatRef;
use crate::chunked::ChunkedTable;
use crate::dictionary::StringDictionary;
use std::collections::HashMap;

/// A named collection of equally long columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<(String, BatRef)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str) -> Table {
        Table { name: name.to_string(), columns: Vec::new() }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a column. Panics if a column of that name exists or if the
    /// column length disagrees with the existing columns.
    pub fn add_column(&mut self, name: &str, bat: BatRef) -> &mut Self {
        assert!(
            self.column(name).is_none(),
            "table '{}' already has a column named '{name}'",
            self.name
        );
        if let Some((_, first)) = self.columns.first() {
            assert_eq!(
                first.len(),
                bat.len(),
                "column '{name}' has {} rows but table '{}' has {}",
                bat.len(),
                self.name,
                first.len()
            );
        }
        self.columns.push((name.to_string(), bat));
        self
    }

    /// Builder-style [`Table::add_column`].
    pub fn with_column(mut self, name: &str, bat: BatRef) -> Self {
        self.add_column(name, bat);
        self
    }

    /// Looks a column up by name.
    pub fn column(&self, name: &str) -> Option<&BatRef> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, b)| b)
    }

    /// Number of rows (0 for a table without columns).
    pub fn row_count(&self) -> usize {
        self.columns.first().map(|(_, b)| b.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Iterates over `(name, column)` pairs.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &BatRef)> {
        self.columns.iter().map(|(n, b)| (n.as_str(), b))
    }

    /// Approximate in-memory footprint of the table's column payloads.
    pub fn payload_bytes(&self) -> usize {
        self.columns.iter().map(|(_, b)| b.len() * 4).sum()
    }
}

/// Process-wide source of catalog generation numbers (see
/// [`Catalog::generation`]).
static NEXT_GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The per-database registry of tables and string dictionaries.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    chunked: HashMap<String, ChunkedTable>,
    dictionaries: HashMap<String, StringDictionary>,
    /// Process-unique version of this catalog's *contents*: assigned fresh
    /// at construction and bumped on every table/dictionary registration.
    /// Consumers that memoise per-column statistics (or anything derived
    /// from them, such as compiled-plan cache keys) key their memo on this
    /// value, so a re-generated database of the same shape can never reuse
    /// stale estimates. Cloning preserves the generation — a clone holds
    /// the same data.
    generation: u64,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::new()
    }
}

impl Catalog {
    /// Creates an empty catalog with a fresh, process-unique generation.
    pub fn new() -> Catalog {
        Catalog {
            tables: HashMap::new(),
            chunked: HashMap::new(),
            dictionaries: HashMap::new(),
            generation: fresh_generation(),
        }
    }

    /// The content version of this catalog (see the field docs). Two
    /// catalogs never share a generation unless one is a clone of the
    /// other, and any mutation moves the catalog to a new generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers a table, replacing any previous table of the same name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
        self.generation = fresh_generation();
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks a column up as `table.column`.
    pub fn column(&self, table: &str, column: &str) -> Option<&BatRef> {
        self.tables.get(table).and_then(|t| t.column(column))
    }

    /// Registers a chunked (streamed) table, replacing any previous chunked
    /// table of the same name. Chunked tables live beside resident tables:
    /// a scan goes through [`ChunkedTable::scan`] one row group at a time,
    /// and [`Catalog::materialize_chunked`] promotes one to a resident
    /// [`Table`] when it fits in host memory.
    pub fn add_chunked_table(&mut self, table: ChunkedTable) {
        self.chunked.insert(table.name().to_string(), table);
        self.generation = fresh_generation();
    }

    /// Looks a chunked table up by name.
    pub fn chunked_table(&self, name: &str) -> Option<&ChunkedTable> {
        self.chunked.get(name)
    }

    /// Names of all registered chunked tables (unordered).
    pub fn chunked_table_names(&self) -> Vec<&str> {
        self.chunked.keys().map(|s| s.as_str()).collect()
    }

    /// Materialises a registered chunked table into a resident [`Table`]
    /// (concatenating all chunks) and registers the result. Returns whether
    /// the name was a known chunked table.
    pub fn materialize_chunked(&mut self, name: &str) -> bool {
        let Some(chunked) = self.chunked.get(name) else { return false };
        let table = chunked.collect();
        self.add_table(table);
        true
    }

    /// Registers the dictionary a string column was encoded with, keyed by
    /// `table.column`.
    pub fn add_dictionary(&mut self, table: &str, column: &str, dict: StringDictionary) {
        self.dictionaries.insert(format!("{table}.{column}"), dict);
        self.generation = fresh_generation();
    }

    /// The dictionary for `table.column`, if that column is a string column.
    pub fn dictionary(&self, table: &str, column: &str) -> Option<&StringDictionary> {
        self.dictionaries.get(&format!("{table}.{column}"))
    }

    /// Encodes a string literal against the dictionary of `table.column`.
    /// Returns `None` when the literal never occurs in the data (an equality
    /// selection against it matches nothing).
    pub fn encode_literal(&self, table: &str, column: &str, literal: &str) -> Option<i32> {
        self.dictionary(table, column).and_then(|d| d.lookup(literal))
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Total payload bytes across all tables.
    pub fn payload_bytes(&self) -> usize {
        self.tables.values().map(|t| t.payload_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bat::Bat;

    fn table() -> Table {
        Table::new("t")
            .with_column("a", Bat::from_i32("a", vec![1, 2, 3]).into_ref())
            .with_column("b", Bat::from_f32("b", vec![0.5, 1.5, 2.5]).into_ref())
    }

    #[test]
    fn table_basics() {
        let t = table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.column_names(), vec!["a", "b"]);
        assert!(t.column("a").is_some());
        assert!(t.column("missing").is_none());
        assert_eq!(t.payload_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "already has a column")]
    fn duplicate_column_panics() {
        table().with_column("a", Bat::from_i32("a", vec![1, 2, 3]).into_ref());
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn mismatched_length_panics() {
        table().with_column("c", Bat::from_i32("c", vec![1]).into_ref());
    }

    #[test]
    fn catalog_lookup() {
        let mut catalog = Catalog::new();
        catalog.add_table(table());
        assert!(catalog.table("t").is_some());
        assert!(catalog.table("nope").is_none());
        assert_eq!(catalog.column("t", "a").unwrap().len(), 3);
        assert!(catalog.column("t", "zzz").is_none());
        assert_eq!(catalog.table_names(), vec!["t"]);
        assert_eq!(catalog.payload_bytes(), 24);
    }

    #[test]
    fn catalog_dictionaries() {
        let mut catalog = Catalog::new();
        let mut dict = StringDictionary::new();
        let codes = dict.encode_all(["AIR", "MAIL", "AIR"]);
        let t = Table::new("lineitem").with_column(
            "l_shipmode",
            Bat::from_i32_typed("l_shipmode", codes, crate::types::ColumnType::StrCode).into_ref(),
        );
        catalog.add_table(t);
        catalog.add_dictionary("lineitem", "l_shipmode", dict);

        assert_eq!(catalog.encode_literal("lineitem", "l_shipmode", "AIR"), Some(0));
        assert_eq!(catalog.encode_literal("lineitem", "l_shipmode", "SHIP"), None);
        assert_eq!(catalog.encode_literal("lineitem", "missing", "AIR"), None);
        assert!(catalog.dictionary("lineitem", "l_shipmode").is_some());
    }

    #[test]
    fn generations_are_unique_and_bump_on_mutation() {
        let mut a = Catalog::new();
        let b = Catalog::new();
        assert_ne!(a.generation(), b.generation());

        let clone = a.clone();
        assert_eq!(a.generation(), clone.generation());

        let before = a.generation();
        a.add_table(table());
        let after_table = a.generation();
        assert_ne!(before, after_table);

        a.add_dictionary("t", "a", StringDictionary::new());
        assert_ne!(after_table, a.generation());
        // The clone kept the pre-mutation generation.
        assert_eq!(clone.generation(), before);
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let t = Table::new("empty");
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }
}
