//! Chunked (out-of-core) tables: row-group streaming over a column store.
//!
//! A [`ChunkedTable`] describes a table whose rows are *produced on demand*,
//! one row group at a time, instead of living resident in the catalog as
//! materialised BATs. The table owns a schema and a row count, and delegates
//! the actual data production to a [`ChunkSource`] — a deterministic,
//! re-invocable generator (the streaming TPC-H dbgen is the canonical
//! source). Scanning a chunked table reuses **one** [`RowGroup`] buffer for
//! every chunk, so the peak host footprint of a scan is a single row group,
//! never a whole column — that is the property the out-of-core tests assert
//! at scale factors where whole columns would not be welcome in host memory.
//!
//! Contracts:
//!
//! * A [`ChunkSource`] must be **pure**: `fill(c, …)` produces the same rows
//!   for the same chunk index every time it is called. Consumers rely on
//!   this to re-scan (or re-spill) without buffering.
//! * Chunks concatenated in index order are *the* table: `collect()` over
//!   `k` chunks equals `collect()` over 1 chunk, row for row.
//! * [`RowGroup`] buffers are reusable: `reset()` clears rows but keeps the
//!   allocations, so a steady-state scan performs no per-chunk allocation
//!   once the high-water row-group size has been reached.

use crate::bat::{Bat, BatRef};
use crate::catalog::Table;
use crate::types::ColumnType;
use std::sync::Arc;

/// One column's worth of values inside a [`RowGroup`]. All catalog types are
/// four-byte words: integer-like columns (`Int`, `Date`, `StrCode`, `Oid`)
/// use the `I32` variant, `Real` columns use `F32`.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkData {
    /// Integer-word values (`Int`, `Date`, `StrCode`, `Oid`).
    I32(Vec<i32>),
    /// Real values.
    F32(Vec<f32>),
}

impl ChunkData {
    /// An empty buffer of the word class matching `ty`.
    pub fn empty(ty: ColumnType) -> ChunkData {
        if ty.is_integer_like() {
            ChunkData::I32(Vec::new())
        } else {
            ChunkData::F32(Vec::new())
        }
    }

    /// Number of values currently held.
    pub fn len(&self) -> usize {
        match self {
            ChunkData::I32(v) => v.len(),
            ChunkData::F32(v) => v.len(),
        }
    }

    /// Whether the buffer currently holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears values but keeps the allocation (buffer reuse across chunks).
    pub fn clear(&mut self) {
        match self {
            ChunkData::I32(v) => v.clear(),
            ChunkData::F32(v) => v.clear(),
        }
    }

    /// Integer view; `None` for a real column.
    pub fn as_i32(&self) -> Option<&[i32]> {
        match self {
            ChunkData::I32(v) => Some(v),
            ChunkData::F32(_) => None,
        }
    }

    /// Real view; `None` for an integer-like column.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            ChunkData::F32(v) => Some(v),
            ChunkData::I32(_) => None,
        }
    }

    /// Appends an integer value. Panics on a real column (schema bug).
    pub fn push_i32(&mut self, value: i32) {
        match self {
            ChunkData::I32(v) => v.push(value),
            ChunkData::F32(_) => panic!("push_i32 into a Real column"),
        }
    }

    /// Appends a real value. Panics on an integer-like column (schema bug).
    pub fn push_f32(&mut self, value: f32) {
        match self {
            ChunkData::F32(v) => v.push(value),
            ChunkData::I32(_) => panic!("push_f32 into an integer column"),
        }
    }

    /// Currently allocated capacity in bytes (all types are 4-byte words).
    pub fn capacity_bytes(&self) -> usize {
        4 * match self {
            ChunkData::I32(v) => v.capacity(),
            ChunkData::F32(v) => v.capacity(),
        }
    }
}

/// One column of a chunked table's schema.
#[derive(Debug, Clone)]
pub struct ChunkedColumn {
    /// Column name.
    pub name: String,
    /// Logical column type.
    pub ty: ColumnType,
    /// Whether the column is a (unique) key — carried onto materialised
    /// BATs so the optimizer sees the same uniqueness as a resident table.
    pub key: bool,
}

/// A reusable buffer holding one chunk of rows for every column of a table.
#[derive(Debug, Clone)]
pub struct RowGroup {
    columns: Vec<(String, ChunkData)>,
}

impl RowGroup {
    /// An empty row group shaped for `schema`.
    pub fn new(schema: &[ChunkedColumn]) -> RowGroup {
        RowGroup {
            columns: schema.iter().map(|c| (c.name.clone(), ChunkData::empty(c.ty))).collect(),
        }
    }

    /// Clears all columns, keeping their allocations.
    pub fn reset(&mut self) {
        for (_, data) in &mut self.columns {
            data.clear();
        }
    }

    /// Number of rows currently buffered. Panics if the source left the
    /// columns ragged — a [`ChunkSource`] must fill every column equally.
    pub fn rows(&self) -> usize {
        let rows = self.columns.first().map(|(_, d)| d.len()).unwrap_or(0);
        for (name, data) in &self.columns {
            assert_eq!(data.len(), rows, "ragged row group: column '{name}'");
        }
        rows
    }

    /// Looks a column buffer up by name.
    pub fn column(&self, name: &str) -> Option<&ChunkData> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Mutable column buffer lookup (for sources filling by name).
    pub fn column_mut(&mut self, name: &str) -> Option<&mut ChunkData> {
        self.columns.iter_mut().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Mutable access to every column buffer, in schema order.
    pub fn columns_mut(&mut self) -> impl Iterator<Item = (&str, &mut ChunkData)> {
        self.columns.iter_mut().map(|(n, d)| (n.as_str(), d))
    }

    /// Iterates `(name, data)` in schema order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &ChunkData)> {
        self.columns.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Total allocated buffer bytes — the scan's resident footprint.
    pub fn capacity_bytes(&self) -> usize {
        self.columns.iter().map(|(_, d)| d.capacity_bytes()).sum()
    }
}

/// A deterministic producer of table chunks.
///
/// Implementations must be pure: calling [`ChunkSource::fill`] twice with
/// the same chunk index appends the same rows. `fill` appends into the
/// (already reset) row group; it must fill every column to the same length.
pub trait ChunkSource: Send + Sync {
    /// Produces chunk `chunk` (0-based) into `out`.
    fn fill(&self, chunk: usize, out: &mut RowGroup);
}

/// A table whose rows are produced chunk-at-a-time by a [`ChunkSource`].
#[derive(Clone)]
pub struct ChunkedTable {
    name: String,
    schema: Vec<ChunkedColumn>,
    rows: usize,
    chunk_count: usize,
    source: Arc<dyn ChunkSource>,
}

impl std::fmt::Debug for ChunkedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkedTable")
            .field("name", &self.name)
            .field("rows", &self.rows)
            .field("chunk_count", &self.chunk_count)
            .field("columns", &self.schema.len())
            .finish()
    }
}

impl ChunkedTable {
    /// Describes a chunked table. `rows` is the total row count across all
    /// `chunk_count` chunks; the source decides the per-chunk split.
    pub fn new(
        name: &str,
        schema: Vec<ChunkedColumn>,
        rows: usize,
        chunk_count: usize,
        source: Arc<dyn ChunkSource>,
    ) -> ChunkedTable {
        assert!(chunk_count > 0, "chunked table '{name}' needs at least one chunk");
        ChunkedTable { name: name.to_string(), schema, rows, chunk_count, source }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total rows across all chunks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of chunks a scan visits.
    pub fn chunk_count(&self) -> usize {
        self.chunk_count
    }

    /// The schema, in column order.
    pub fn schema(&self) -> &[ChunkedColumn] {
        &self.schema
    }

    /// Scans the table chunk-at-a-time through **one** reusable row-group
    /// buffer. `visit` receives `(chunk_index, row_group)`; the row group's
    /// contents are only valid for the duration of the call — the buffer is
    /// reset and refilled for the next chunk. Returns the number of rows
    /// visited (always [`ChunkedTable::rows`]; the scan asserts the source
    /// honours its advertised row count).
    pub fn scan(&self, mut visit: impl FnMut(usize, &RowGroup)) -> usize {
        let mut group = RowGroup::new(&self.schema);
        let mut total = 0;
        for chunk in 0..self.chunk_count {
            group.reset();
            self.source.fill(chunk, &mut group);
            total += group.rows();
            visit(chunk, &group);
        }
        assert_eq!(
            total, self.rows,
            "chunked table '{}' produced {total} rows but advertised {}",
            self.name, self.rows
        );
        total
    }

    /// Materialises the table into a resident [`Table`] by concatenating
    /// all chunks. This is the bridge back to the in-memory engine (and the
    /// reference the determinism tests compare against) — it *does* build
    /// whole columns, so it is only appropriate when the table fits in host
    /// memory.
    pub fn collect(&self) -> Table {
        // One accumulator pair per column; only the slot matching the
        // column's type ever receives data.
        let mut ints: Vec<Vec<i32>> = vec![Vec::new(); self.schema.len()];
        let mut reals: Vec<Vec<f32>> = vec![Vec::new(); self.schema.len()];
        self.scan(|_, group| {
            for (i, (_, data)) in group.columns().enumerate() {
                match data {
                    ChunkData::I32(v) => ints[i].extend_from_slice(v),
                    ChunkData::F32(v) => reals[i].extend_from_slice(v),
                }
            }
        });
        let mut table = Table::new(&self.name);
        for (i, col) in self.schema.iter().enumerate() {
            let bat: BatRef = if col.ty.is_integer_like() {
                Bat::from_i32_typed(&col.name, std::mem::take(&mut ints[i]), col.ty)
                    .with_key(col.key)
                    .into_ref()
            } else {
                Bat::from_f32(&col.name, std::mem::take(&mut reals[i])).with_key(col.key).into_ref()
            };
            table.add_column(&col.name, bat);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chunk c yields rows [c*3, c*3+3): a, a squared (as f32).
    struct Squares;
    impl ChunkSource for Squares {
        fn fill(&self, chunk: usize, out: &mut RowGroup) {
            for row in (chunk * 3)..(chunk * 3 + 3) {
                out.column_mut("a").unwrap().push_i32(row as i32);
                out.column_mut("sq").unwrap().push_f32((row * row) as f32);
            }
        }
    }

    fn squares_table(chunks: usize) -> ChunkedTable {
        ChunkedTable::new(
            "squares",
            vec![
                ChunkedColumn { name: "a".into(), ty: ColumnType::Int, key: true },
                ChunkedColumn { name: "sq".into(), ty: ColumnType::Real, key: false },
            ],
            chunks * 3,
            chunks,
            Arc::new(Squares),
        )
    }

    #[test]
    fn scan_reuses_one_buffer_and_counts_rows() {
        let t = squares_table(4);
        let mut seen = Vec::new();
        let rows = t.scan(|chunk, group| {
            assert_eq!(group.rows(), 3);
            seen.push((chunk, group.column("a").unwrap().as_i32().unwrap().to_vec()));
        });
        assert_eq!(rows, 12);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[3].1, vec![9, 10, 11]);
    }

    #[test]
    fn collect_concatenates_chunks_in_order() {
        let t = squares_table(3);
        let table = t.collect();
        assert_eq!(table.row_count(), 9);
        assert_eq!(
            table.column("a").unwrap().as_i32().unwrap(),
            (0..9).collect::<Vec<i32>>().as_slice()
        );
        assert!(table.column("a").unwrap().is_key());
        assert_eq!(table.column("sq").unwrap().as_f32().unwrap()[8], 64.0);
    }

    #[test]
    fn row_group_buffers_are_reusable() {
        let schema = vec![ChunkedColumn { name: "a".into(), ty: ColumnType::Int, key: false }];
        let mut group = RowGroup::new(&schema);
        group.column_mut("a").unwrap().push_i32(1);
        group.column_mut("a").unwrap().push_i32(2);
        assert_eq!(group.rows(), 2);
        let cap = group.capacity_bytes();
        group.reset();
        assert_eq!(group.rows(), 0);
        assert_eq!(group.capacity_bytes(), cap, "reset keeps allocations");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_fill_is_detected() {
        let schema = vec![
            ChunkedColumn { name: "a".into(), ty: ColumnType::Int, key: false },
            ChunkedColumn { name: "b".into(), ty: ColumnType::Int, key: false },
        ];
        let mut group = RowGroup::new(&schema);
        group.column_mut("a").unwrap().push_i32(1);
        group.rows();
    }
}
