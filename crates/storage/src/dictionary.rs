//! Dictionary encoding for string columns.
//!
//! Ocelot "does not support operations on strings beside equality
//! comparisons" (Appendix A). Equality on strings is therefore implemented
//! by dictionary-encoding every string column into 32-bit codes: two values
//! are equal iff their codes are equal. Codes carry no order, which is
//! exactly the restriction the paper works under (no `LIKE`, no string
//! sorting, no substring).

use std::collections::HashMap;

/// A bidirectional mapping between strings and dense 32-bit codes.
#[derive(Debug, Default, Clone)]
pub struct StringDictionary {
    values: Vec<String>,
    index: HashMap<String, i32>,
}

impl StringDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        StringDictionary::default()
    }

    /// Returns the code for `value`, inserting it if it is new.
    pub fn encode(&mut self, value: &str) -> i32 {
        if let Some(code) = self.index.get(value) {
            return *code;
        }
        let code = self.values.len() as i32;
        self.values.push(value.to_string());
        self.index.insert(value.to_string(), code);
        code
    }

    /// Encodes a whole column.
    pub fn encode_all<I, S>(&mut self, values: I) -> Vec<i32>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        values.into_iter().map(|v| self.encode(v.as_ref())).collect()
    }

    /// Returns the code for `value` if it has been seen before.
    ///
    /// Query predicates use this: an equality selection against a string
    /// literal that is not in the dictionary matches nothing.
    pub fn lookup(&self, value: &str) -> Option<i32> {
        self.index.get(value).copied()
    }

    /// Returns the string for `code`, if valid.
    pub fn decode(&self, code: i32) -> Option<&str> {
        if code < 0 {
            return None;
        }
        self.values.get(code as usize).map(|s| s.as_str())
    }

    /// Number of distinct strings in the dictionary.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_is_stable_and_dense() {
        let mut dict = StringDictionary::new();
        let a = dict.encode("GERMANY");
        let b = dict.encode("FRANCE");
        let a2 = dict.encode("GERMANY");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.decode(a), Some("GERMANY"));
        assert_eq!(dict.decode(b), Some("FRANCE"));
    }

    #[test]
    fn lookup_without_insert() {
        let mut dict = StringDictionary::new();
        dict.encode("AIR");
        assert_eq!(dict.lookup("AIR"), Some(0));
        assert_eq!(dict.lookup("TRUCK"), None);
        assert_eq!(dict.len(), 1, "lookup must not insert");
    }

    #[test]
    fn decode_out_of_range() {
        let dict = StringDictionary::new();
        assert_eq!(dict.decode(0), None);
        assert_eq!(dict.decode(-1), None);
        assert!(dict.is_empty());
    }

    #[test]
    fn encode_all_matches_individual_encoding() {
        let mut dict = StringDictionary::new();
        let codes = dict.encode_all(["a", "b", "a", "c", "b"]);
        assert_eq!(codes, vec![0, 1, 0, 2, 1]);
        assert_eq!(dict.len(), 3);
    }

    proptest! {
        #[test]
        fn equality_preserved_by_codes(values in proptest::collection::vec("[A-Z]{1,8}", 1..50)) {
            let mut dict = StringDictionary::new();
            let codes = dict.encode_all(&values);
            for i in 0..values.len() {
                for j in 0..values.len() {
                    prop_assert_eq!(values[i] == values[j], codes[i] == codes[j]);
                }
            }
            // Decoding every code yields the original string.
            for (value, code) in values.iter().zip(codes.iter()) {
                prop_assert_eq!(dict.decode(*code), Some(value.as_str()));
            }
        }
    }
}
