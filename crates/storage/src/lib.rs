//! # ocelot-storage — a MonetDB-like column-store substrate
//!
//! The paper integrates Ocelot into MonetDB and reuses its storage layer:
//! Binary Association Tables (BATs), a catalog, and four-byte column types
//! (§3.1, §3.3). This crate provides that substrate for the Rust
//! reproduction:
//!
//! * [`Bat`] — a single column with MonetDB-style descriptor flags
//!   (`sorted`, `key`, and the `ocelot_owned` flag the paper adds in §4.3),
//!   backed by 128-byte-aligned storage ([`alignment::AlignedVec`], matching
//!   the SSE-alignment change the paper made to MonetDB's allocator).
//! * [`ColumnType`] / [`Value`] — the supported four-byte data types:
//!   integers, reals, OIDs, dates (stored as day numbers) and
//!   dictionary-encoded strings.
//! * [`StringDictionary`] — equality-only string support via dictionary
//!   codes (the paper's Ocelot supports no string operation beyond equality,
//!   Appendix A).
//! * [`Catalog`] / [`Table`] — named collections of equally-long BATs.
//!
//! Both the hand-tuned baseline operators (`ocelot-monet`) and the
//! hardware-oblivious operators (`ocelot-core`) consume and produce BATs, so
//! results are directly comparable.

pub mod alignment;
pub mod bat;
pub mod catalog;
pub mod chunked;
pub mod dictionary;
pub mod types;

pub use alignment::AlignedVec;
pub use bat::{Bat, BatRef, ColumnData};
pub use catalog::{Catalog, Table};
pub use chunked::{ChunkData, ChunkSource, ChunkedColumn, ChunkedTable, RowGroup};
pub use dictionary::StringDictionary;
pub use types::{ColumnType, Oid, Value};
