//! Column types and scalar values.
//!
//! The paper limits Ocelot to four-byte integer and floating point data
//! (§3.1); DECIMAL columns become REAL, dates become day numbers, and
//! strings are dictionary-encoded integer codes that only support equality
//! (Appendix A). The types here encode exactly that restriction.

/// Tuple identifier (MonetDB OID). Dense BAT heads are virtual, so OIDs are
/// simply row positions.
pub type Oid = u32;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit signed integer.
    Int,
    /// 32-bit IEEE-754 float (the paper's replacement for DECIMAL).
    Real,
    /// 32-bit tuple identifier.
    Oid,
    /// Date stored as days since 1970-01-01 in a 32-bit integer.
    Date,
    /// Dictionary code of a string column (equality comparisons only).
    StrCode,
}

impl ColumnType {
    /// Whether the column is stored as a signed 32-bit integer word.
    pub fn is_integer_like(self) -> bool {
        !matches!(self, ColumnType::Real)
    }

    /// Size of one value in bytes (always four — the paper's restriction).
    pub fn value_bytes(self) -> usize {
        4
    }
}

/// A single scalar value, used for query results and literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit integer (also used for dates and string codes).
    Int(i32),
    /// 32-bit float.
    Real(f32),
    /// Tuple identifier.
    Oid(Oid),
}

impl Value {
    /// The integer payload, if this is an integer-like value.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Oid(v) => Some(*v as i32),
            Value::Real(_) => None,
        }
    }

    /// The float payload, converting integers losslessly where possible.
    pub fn as_real(&self) -> Option<f32> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f32),
            Value::Oid(v) => Some(*v as f32),
        }
    }
}

/// Converts a calendar date to the day-number representation used by date
/// columns (days since 1970-01-01, proleptic Gregorian).
pub fn date_to_days(year: i32, month: u32, day: u32) -> i32 {
    // Howard Hinnant's civil-from-days algorithm, inverted.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i32 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i32 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Converts a day number back to `(year, month, day)`.
pub fn days_to_date(days: i32) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if m <= 2 { y + 1 } else { y };
    (year, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(-3).as_int(), Some(-3));
        assert_eq!(Value::Oid(7).as_int(), Some(7));
        assert_eq!(Value::Real(1.5).as_int(), None);
        assert_eq!(Value::Real(1.5).as_real(), Some(1.5));
        assert_eq!(Value::Int(2).as_real(), Some(2.0));
    }

    #[test]
    fn column_types_are_four_bytes() {
        for ty in [
            ColumnType::Int,
            ColumnType::Real,
            ColumnType::Oid,
            ColumnType::Date,
            ColumnType::StrCode,
        ] {
            assert_eq!(ty.value_bytes(), 4);
        }
        assert!(ColumnType::Int.is_integer_like());
        assert!(!ColumnType::Real.is_integer_like());
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(days_to_date(0), (1970, 1, 1));
    }

    #[test]
    fn known_tpch_dates_round_trip() {
        // TPC-H date range: 1992-01-01 .. 1998-12-31.
        for (y, m, d) in [(1992, 1, 1), (1995, 6, 17), (1998, 12, 31), (1994, 2, 28), (1996, 2, 29)]
        {
            let days = date_to_days(y, m, d);
            assert_eq!(days_to_date(days), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn date_ordering_matches_day_numbers() {
        assert!(date_to_days(1995, 1, 1) < date_to_days(1995, 1, 2));
        assert!(date_to_days(1994, 12, 31) < date_to_days(1995, 1, 1));
        assert!(date_to_days(1992, 1, 1) < date_to_days(1998, 12, 31));
    }
}
