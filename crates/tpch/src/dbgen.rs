//! Deterministic, *streaming* TPC-H-style data generator.
//!
//! The generator reproduces the *shape* of TPC-H data — the table
//! cardinality ratios, the PK/FK relationships, the value domains and the
//! date ranges the queries filter on — with seeded pseudo-random derivation.
//! It is not the official `dbgen` (no text corpus, no V2 comments), but
//! every column the fourteen evaluated queries touch is present with
//! realistic distributions, which is what the performance comparison needs.
//!
//! ## Streaming and determinism
//!
//! Every value is a **pure function of `(seed, table, row)`**: each row
//! derives its own RNG by mixing the configuration seed with a per-table
//! stream tag and the row index (splitmix-style), and draws its fields in a
//! fixed order. There is no sequential generator state threaded through the
//! tables, so:
//!
//! * generation is **chunk-size invariant** — producing a table in 1, 2 or
//!   7 chunks yields identical rows in identical order, by construction;
//! * tables stream **partition-at-a-time** through reusable
//!   [`RowGroup`] buffers (see [`chunked_tables`]), so scale factors 1–10
//!   never materialise a whole column on the host;
//! * lineitem rows derive from `(order, line)` with per-order line counts
//!   hashed from the order key, so the dominant table chunks on order
//!   ranges without replaying any prefix.
//!
//! String dictionaries are pre-built deterministically (each literal table
//! encoded in declaration order), so dictionary codes are positional and
//! independent of which rows have been generated.
//!
//! Scale: at scale factor 1.0 the generator produces the official row
//! counts (6 M lineitems). Benchmarks use fractional scale factors; row
//! counts scale linearly with a floor that keeps the dimension tables
//! non-degenerate.

use ocelot_storage::types::date_to_days;
use ocelot_storage::{
    Catalog, ChunkData, ChunkSource, ChunkedColumn, ChunkedTable, ColumnType, RowGroup,
    StringDictionary,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = official row counts; benchmarks use
    /// fractions such as 0.01).
    pub scale_factor: f64,
    /// RNG seed; equal seeds produce identical databases.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale_factor: 0.01, seed: 42 }
    }
}

impl TpchConfig {
    /// Convenience constructor.
    pub fn new(scale_factor: f64) -> TpchConfig {
        TpchConfig { scale_factor, ..Default::default() }
    }
}

/// A generated TPC-H database: the catalog plus the dictionaries used to
/// encode its string columns.
#[derive(Debug, Clone)]
pub struct TpchDb {
    catalog: Catalog,
    config: TpchConfig,
}

const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIPINSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const RETURNFLAGS: [&str; 3] = ["R", "A", "N"];
const LINESTATUS: [&str; 2] = ["O", "F"];
const STATUSES: [&str; 2] = ["F", "O"];
const BRANDS: [&str; 25] = [
    "Brand#11", "Brand#12", "Brand#13", "Brand#14", "Brand#15", "Brand#21", "Brand#22", "Brand#23",
    "Brand#24", "Brand#25", "Brand#31", "Brand#32", "Brand#33", "Brand#34", "Brand#35", "Brand#41",
    "Brand#42", "Brand#43", "Brand#44", "Brand#45", "Brand#51", "Brand#52", "Brand#53", "Brand#54",
    "Brand#55",
];
const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "LG BOX"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD POLISHED TIN",
    "PROMO BURNISHED COPPER",
    "SMALL PLATED BRASS",
    "LARGE BRUSHED NICKEL",
    "MEDIUM ANODIZED COPPER",
];

fn scaled(base: usize, sf: f64, min: usize) -> usize {
    ((base as f64 * sf).round() as usize).max(min)
}

// ---------------------------------------------------------------------------
// Counter-based row derivation
// ---------------------------------------------------------------------------

/// Per-table stream tags: each table draws from its own derivation stream
/// so adding columns to one table never perturbs another.
mod tag {
    pub const SUPPLIER: u64 = 1;
    pub const CUSTOMER: u64 = 2;
    pub const PART: u64 = 3;
    pub const PARTSUPP: u64 = 4;
    pub const ORDERS: u64 = 5;
    pub const LINECOUNT: u64 = 6;
    pub const LINEITEM: u64 = 7;
}

/// Splitmix64 finaliser: bijective 64-bit mixing.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-row generator: a fresh RNG whose seed is a pure function of
/// `(seed, stream tag, row index)`. Rows draw their fields from it in a
/// fixed order, which makes every value independent of generation order —
/// the property the chunk-size-invariance tests pin down.
fn row_rng(seed: u64, stream: u64, row: u64) -> StdRng {
    let mixed = mix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ mix64(stream) ^ row);
    StdRng::seed_from_u64(mixed)
}

/// Scaled row counts for one configuration.
#[derive(Debug, Clone, Copy)]
struct Shape {
    num_suppliers: usize,
    num_customers: usize,
    num_parts: usize,
    num_orders: usize,
    num_partsupp: usize,
}

impl Shape {
    fn of(config: &TpchConfig) -> Shape {
        let sf = config.scale_factor;
        let num_parts = scaled(200_000, sf, 50);
        Shape {
            num_suppliers: scaled(10_000, sf, 20),
            num_customers: scaled(150_000, sf, 50),
            num_parts,
            num_orders: scaled(1_500_000, sf, 200),
            num_partsupp: num_parts * 4,
        }
    }
}

/// Number of lineitem rows belonging to order `order` (1..=7, hashed from
/// the order key so it can be recomputed anywhere without a prefix replay).
fn order_line_count(seed: u64, order: usize) -> usize {
    row_rng(seed, tag::LINECOUNT, order as u64).gen_range(1..=7)
}

/// The order-date of order `order`, re-derivable by the lineitem stream
/// (ship/commit/receipt dates are offsets from it).
fn order_date(seed: u64, order: usize) -> i32 {
    // Field order must match `fill_orders`: custkey is drawn first.
    let mut rng = row_rng(seed, tag::ORDERS, order as u64);
    let _custkey: i32 = rng.gen_range(0..i32::MAX);
    rng.gen_range(date_to_days(1992, 1, 1)..=date_to_days(1998, 8, 2))
}

// ---------------------------------------------------------------------------
// Table schemas and chunk sources
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableKind {
    Region,
    Nation,
    Supplier,
    Customer,
    Part,
    Partsupp,
    Orders,
    Lineitem,
}

impl TableKind {
    const ALL: [TableKind; 8] = [
        TableKind::Region,
        TableKind::Nation,
        TableKind::Supplier,
        TableKind::Customer,
        TableKind::Part,
        TableKind::Partsupp,
        TableKind::Orders,
        TableKind::Lineitem,
    ];

    fn name(self) -> &'static str {
        match self {
            TableKind::Region => "region",
            TableKind::Nation => "nation",
            TableKind::Supplier => "supplier",
            TableKind::Customer => "customer",
            TableKind::Part => "part",
            TableKind::Partsupp => "partsupp",
            TableKind::Orders => "orders",
            TableKind::Lineitem => "lineitem",
        }
    }

    fn schema(self) -> Vec<ChunkedColumn> {
        let col = |name: &str, ty: ColumnType, key: bool| ChunkedColumn {
            name: name.to_string(),
            ty,
            key,
        };
        use ColumnType::{Date, Int, Real, StrCode};
        match self {
            TableKind::Region => {
                vec![col("r_regionkey", Int, true), col("r_name", StrCode, false)]
            }
            TableKind::Nation => vec![
                col("n_nationkey", Int, true),
                col("n_name", StrCode, false),
                col("n_regionkey", Int, false),
            ],
            TableKind::Supplier => vec![
                col("s_suppkey", Int, true),
                col("s_name", StrCode, false),
                col("s_nationkey", Int, false),
            ],
            TableKind::Customer => vec![
                col("c_custkey", Int, true),
                col("c_mktsegment", StrCode, false),
                col("c_nationkey", Int, false),
                col("c_acctbal", Real, false),
            ],
            TableKind::Part => vec![
                col("p_partkey", Int, true),
                col("p_brand", StrCode, false),
                col("p_container", StrCode, false),
                col("p_type", StrCode, false),
                col("p_size", Int, false),
                col("p_retailprice", Real, false),
            ],
            TableKind::Partsupp => vec![
                col("ps_partkey", Int, false),
                col("ps_suppkey", Int, false),
                col("ps_supplycost", Real, false),
                col("ps_availqty", Real, false),
            ],
            TableKind::Orders => vec![
                col("o_orderkey", Int, true),
                col("o_custkey", Int, false),
                col("o_orderdate", Date, false),
                col("o_orderpriority", StrCode, false),
                col("o_orderstatus", StrCode, false),
                col("o_shippriority", Int, false),
            ],
            TableKind::Lineitem => vec![
                col("l_orderkey", Int, false),
                col("l_partkey", Int, false),
                col("l_suppkey", Int, false),
                col("l_quantity", Real, false),
                col("l_extendedprice", Real, false),
                col("l_discount", Real, false),
                col("l_tax", Real, false),
                col("l_returnflag", StrCode, false),
                col("l_linestatus", StrCode, false),
                col("l_shipdate", Date, false),
                col("l_commitdate", Date, false),
                col("l_receiptdate", Date, false),
                col("l_shipmode", StrCode, false),
                col("l_shipinstruct", StrCode, false),
            ],
        }
    }

    /// Row count (for lineitem: the exact total across all orders).
    fn rows(self, seed: u64, shape: Shape) -> usize {
        match self {
            TableKind::Region => REGIONS.len(),
            TableKind::Nation => NATIONS.len(),
            TableKind::Supplier => shape.num_suppliers,
            TableKind::Customer => shape.num_customers,
            TableKind::Part => shape.num_parts,
            TableKind::Partsupp => shape.num_partsupp,
            TableKind::Orders => shape.num_orders,
            TableKind::Lineitem => (0..shape.num_orders).map(|o| order_line_count(seed, o)).sum(),
        }
    }

    /// The unit the table chunks on: row index for every table except
    /// lineitem, which chunks on *order* ranges (its row count per order
    /// varies, but each order's lines always land in the same chunk).
    fn chunk_units(self, shape: Shape) -> usize {
        match self {
            TableKind::Lineitem => shape.num_orders,
            other => other.rows(0, shape), // row counts don't depend on seed
        }
    }
}

/// A deterministic chunk producer over one TPC-H table: chunk `c` covers
/// units `[bounds[c].0, bounds[c].1)` (rows, or orders for lineitem).
struct TpchChunks {
    seed: u64,
    shape: Shape,
    kind: TableKind,
    bounds: Vec<(usize, usize)>,
}

impl ChunkSource for TpchChunks {
    fn fill(&self, chunk: usize, out: &mut RowGroup) {
        let (start, end) = self.bounds[chunk];
        let mut cols: Vec<&mut ChunkData> = out.columns_mut().map(|(_, d)| d).collect();
        match self.kind {
            TableKind::Region => fill_region(start, end, &mut cols),
            TableKind::Nation => fill_nation(start, end, &mut cols),
            TableKind::Supplier => fill_supplier(self.seed, start, end, &mut cols),
            TableKind::Customer => fill_customer(self.seed, start, end, &mut cols),
            TableKind::Part => fill_part(self.seed, start, end, &mut cols),
            TableKind::Partsupp => fill_partsupp(self.seed, self.shape, start, end, &mut cols),
            TableKind::Orders => fill_orders(self.seed, self.shape, start, end, &mut cols),
            TableKind::Lineitem => fill_lineitem(self.seed, self.shape, start, end, &mut cols),
        }
    }
}

fn fill_region(start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for i in start..end {
        cols[0].push_i32(i as i32);
        cols[1].push_i32(i as i32); // r_name codes are positional
    }
}

fn fill_nation(start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for (i, nation) in NATIONS.iter().enumerate().take(end).skip(start) {
        cols[0].push_i32(i as i32);
        cols[1].push_i32(i as i32); // n_name codes are positional
        cols[2].push_i32(nation.1);
    }
}

fn fill_supplier(seed: u64, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for i in start..end {
        let mut rng = row_rng(seed, tag::SUPPLIER, i as u64);
        cols[0].push_i32(i as i32);
        cols[1].push_i32(i as i32); // s_name codes are positional
        cols[2].push_i32(rng.gen_range(0..25));
    }
}

fn fill_customer(seed: u64, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for i in start..end {
        let mut rng = row_rng(seed, tag::CUSTOMER, i as u64);
        cols[0].push_i32(i as i32);
        cols[1].push_i32(rng.gen_range(0..SEGMENTS.len() as i32));
        cols[2].push_i32(rng.gen_range(0..25));
        cols[3].push_f32(rng.gen_range(-999.99..9999.99));
    }
}

fn fill_part(seed: u64, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for i in start..end {
        let mut rng = row_rng(seed, tag::PART, i as u64);
        cols[0].push_i32(i as i32);
        cols[1].push_i32(rng.gen_range(0..BRANDS.len() as i32));
        cols[2].push_i32(rng.gen_range(0..CONTAINERS.len() as i32));
        cols[3].push_i32(rng.gen_range(0..TYPES.len() as i32));
        cols[4].push_i32(rng.gen_range(1..=50));
        cols[5].push_f32(rng.gen_range(900.0..2100.0));
    }
}

fn fill_partsupp(seed: u64, shape: Shape, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for i in start..end {
        let mut rng = row_rng(seed, tag::PARTSUPP, i as u64);
        cols[0].push_i32((i / 4) as i32);
        cols[1].push_i32(rng.gen_range(0..shape.num_suppliers as i32));
        cols[2].push_f32(rng.gen_range(1.0..1000.0));
        cols[3].push_f32(rng.gen_range(1.0..9999.0));
    }
}

fn fill_orders(seed: u64, shape: Shape, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    let start_date = date_to_days(1992, 1, 1);
    let end_date = date_to_days(1998, 8, 2);
    for i in start..end {
        // Field order must match `order_date`'s re-derivation.
        let mut rng = row_rng(seed, tag::ORDERS, i as u64);
        let custkey = rng.gen_range(0..i32::MAX) % shape.num_customers as i32;
        cols[0].push_i32(i as i32);
        cols[1].push_i32(custkey);
        cols[2].push_i32(rng.gen_range(start_date..=end_date));
        cols[3].push_i32(rng.gen_range(0..PRIORITIES.len() as i32));
        // Roughly half the orders are fully shipped ('F', code 0).
        cols[4].push_i32(if i % 2 == 0 { 0 } else { 1 });
        cols[5].push_i32(0);
    }
}

fn fill_lineitem(seed: u64, shape: Shape, start: usize, end: usize, cols: &mut [&mut ChunkData]) {
    for order in start..end {
        let o_date = order_date(seed, order);
        let lines = order_line_count(seed, order);
        for line in 0..lines {
            // One derivation stream per (order, line) pair; the ×8 stride
            // leaves every pair its own counter slot (lines ≤ 7).
            let mut rng = row_rng(seed, tag::LINEITEM, (order as u64) * 8 + line as u64);
            cols[0].push_i32(order as i32);
            cols[1].push_i32(rng.gen_range(0..shape.num_parts as i32));
            cols[2].push_i32(rng.gen_range(0..shape.num_suppliers as i32));
            cols[3].push_f32(rng.gen_range(1..=50) as f32);
            cols[4].push_f32(rng.gen_range(900.0..105_000.0f32));
            cols[5].push_f32((rng.gen_range(0..=10) as f32) / 100.0);
            cols[6].push_f32((rng.gen_range(0..=8) as f32) / 100.0);
            cols[7].push_i32(rng.gen_range(0..RETURNFLAGS.len() as i32));
            cols[8].push_i32(rng.gen_range(0..LINESTATUS.len() as i32));
            let ship = o_date + rng.gen_range(1..=121);
            let commit = ship + rng.gen_range(-30..=30);
            let receipt = ship + rng.gen_range(1..=30);
            cols[9].push_i32(ship);
            cols[10].push_i32(commit);
            cols[11].push_i32(receipt);
            cols[12].push_i32(rng.gen_range(0..SHIPMODES.len() as i32));
            cols[13].push_i32(rng.gen_range(0..SHIPINSTRUCT.len() as i32));
        }
    }
}

/// Splits `units` chunk units into at most `chunks` contiguous ranges.
fn chunk_bounds(units: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, units.max(1));
    let per = units.div_ceil(chunks);
    let mut bounds = Vec::new();
    let mut start = 0;
    while start < units {
        let end = (start + per).min(units);
        bounds.push((start, end));
        start = end;
    }
    if bounds.is_empty() {
        bounds.push((0, 0));
    }
    bounds
}

/// All eight TPC-H tables as streaming [`ChunkedTable`]s, each split into
/// (up to) `chunks` chunks. No column data is generated by this call; rows
/// stream on scan through one reusable row group per table.
pub fn chunked_tables(config: &TpchConfig, chunks: usize) -> Vec<ChunkedTable> {
    let shape = Shape::of(config);
    TableKind::ALL
        .iter()
        .map(|&kind| {
            let bounds = chunk_bounds(kind.chunk_units(shape), chunks);
            let rows = kind.rows(config.seed, shape);
            let chunk_count = bounds.len();
            ChunkedTable::new(
                kind.name(),
                kind.schema(),
                rows,
                chunk_count,
                Arc::new(TpchChunks { seed: config.seed, shape, kind, bounds }),
            )
        })
        .collect()
}

/// [`chunked_tables`] sized so each chunk holds roughly `target_rows` rows
/// (per-order for lineitem, whose chunks land on order boundaries).
pub fn chunked_tables_by_rows(config: &TpchConfig, target_rows: usize) -> Vec<ChunkedTable> {
    let shape = Shape::of(config);
    let target = target_rows.max(1);
    TableKind::ALL
        .iter()
        .map(|&kind| {
            let units = kind.chunk_units(shape);
            let chunks = units.div_ceil(target).max(1);
            let bounds = chunk_bounds(units, chunks);
            let rows = kind.rows(config.seed, shape);
            let chunk_count = bounds.len();
            ChunkedTable::new(
                kind.name(),
                kind.schema(),
                rows,
                chunk_count,
                Arc::new(TpchChunks { seed: config.seed, shape, kind, bounds }),
            )
        })
        .collect()
}

/// Registers the streaming tables *and* their dictionaries into `catalog`
/// without materialising any column: the chunked tables are scannable via
/// [`Catalog::chunked_table`], and string literals resolve through the
/// pre-built positional dictionaries.
pub fn register_chunked(catalog: &mut Catalog, config: &TpchConfig, chunks: usize) {
    for table in chunked_tables(config, chunks) {
        catalog.add_chunked_table(table);
    }
    for (table, column, dict) in build_dictionaries(config) {
        catalog.add_dictionary(table, column, dict);
    }
}

/// The deterministic dictionaries of every string column: each literal
/// table is encoded in declaration order, so codes are positional (`code ==
/// index`) and independent of the generated rows.
fn build_dictionaries(config: &TpchConfig) -> Vec<(&'static str, &'static str, StringDictionary)> {
    let shape = Shape::of(config);
    let ordered = |values: &[&str]| {
        let mut dict = StringDictionary::new();
        for v in values {
            dict.encode(v);
        }
        dict
    };
    let mut supplier_names = StringDictionary::new();
    for i in 0..shape.num_suppliers {
        supplier_names.encode(&format!("Supplier#{i:09}"));
    }
    let nation_names: Vec<&str> = NATIONS.iter().map(|(n, _)| *n).collect();
    vec![
        ("region", "r_name", ordered(&REGIONS)),
        ("nation", "n_name", ordered(&nation_names)),
        ("supplier", "s_name", supplier_names),
        ("customer", "c_mktsegment", ordered(&SEGMENTS)),
        ("part", "p_brand", ordered(&BRANDS)),
        ("part", "p_container", ordered(&CONTAINERS)),
        ("part", "p_type", ordered(&TYPES)),
        ("orders", "o_orderpriority", ordered(&PRIORITIES)),
        ("orders", "o_orderstatus", ordered(&STATUSES)),
        ("lineitem", "l_shipmode", ordered(&SHIPMODES)),
        ("lineitem", "l_shipinstruct", ordered(&SHIPINSTRUCT)),
        ("lineitem", "l_returnflag", ordered(&RETURNFLAGS)),
        ("lineitem", "l_linestatus", ordered(&LINESTATUS)),
    ]
}

/// Default row-group granularity for materialising generation: small enough
/// that `generate` exercises the streaming path, large enough that chunk
/// overhead is noise.
const DEFAULT_CHUNK_ROWS: usize = 1 << 16;

impl TpchDb {
    /// Generates a resident database for the given configuration by
    /// streaming every table through the chunked generator and collecting
    /// the chunks into catalog BATs. Equal configurations produce equal
    /// databases regardless of chunking (see [`chunked_tables`]).
    pub fn generate(config: TpchConfig) -> TpchDb {
        TpchDb::generate_with_chunk_rows(config, DEFAULT_CHUNK_ROWS)
    }

    /// [`TpchDb::generate`] with an explicit row-group granularity — the
    /// determinism tests use this to compare monolithic (one chunk) against
    /// finely chunked generation.
    pub fn generate_with_chunk_rows(config: TpchConfig, chunk_rows: usize) -> TpchDb {
        let mut catalog = Catalog::new();
        for table in chunked_tables_by_rows(&config, chunk_rows) {
            catalog.add_table(table.collect());
        }
        for (table, column, dict) in build_dictionaries(&config) {
            catalog.add_dictionary(table, column, dict);
        }
        TpchDb { catalog, config }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The generator configuration this database was built with.
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Convenience accessor for a column BAT. Panics on unknown columns (a
    /// query referencing a missing column is a programming error).
    pub fn col(&self, table: &str, column: &str) -> &ocelot_storage::BatRef {
        self.catalog
            .column(table, column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"))
    }

    /// The dictionary code of a string literal in `table.column`, or a
    /// sentinel that matches nothing when the literal never occurs.
    pub fn code(&self, table: &str, column: &str, literal: &str) -> i32 {
        self.catalog.encode_literal(table, column, literal).unwrap_or(i32::MIN + 1)
    }

    /// Decodes a dictionary code back to its string (for result rendering).
    pub fn decode(&self, table: &str, column: &str, code: i32) -> String {
        self.catalog
            .dictionary(table, column)
            .and_then(|d| d.decode(code))
            .unwrap_or("<unknown>")
            .to_string()
    }

    /// Total payload bytes across the database (the "input size" axis of the
    /// scaling experiments).
    pub fn payload_bytes(&self) -> usize {
        self.catalog.payload_bytes()
    }

    /// Number of lineitem rows (the dominant table).
    pub fn lineitem_rows(&self) -> usize {
        self.catalog.table("lineitem").map(|t| t.row_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 7 });
        let b = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 7 });
        assert_eq!(a.lineitem_rows(), b.lineitem_rows());
        assert_eq!(
            a.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50],
            b.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50]
        );
        let c = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 8 });
        assert_ne!(
            a.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50],
            c.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50]
        );
    }

    #[test]
    fn schema_has_all_query_columns() {
        let db = TpchDb::generate(TpchConfig::new(0.001));
        for (table, column) in [
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipmode"),
            ("orders", "o_orderdate"),
            ("orders", "o_orderpriority"),
            ("customer", "c_mktsegment"),
            ("supplier", "s_nationkey"),
            ("nation", "n_name"),
            ("region", "r_name"),
            ("part", "p_brand"),
            ("partsupp", "ps_supplycost"),
        ] {
            assert!(db.catalog().column(table, column).is_some(), "{table}.{column}");
        }
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let num_orders = db.col("orders", "o_orderkey").len() as i32;
        let num_parts = db.col("part", "p_partkey").len() as i32;
        let num_suppliers = db.col("supplier", "s_suppkey").len() as i32;
        let num_customers = db.col("customer", "c_custkey").len() as i32;
        for &fk in db.col("lineitem", "l_orderkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_orders);
        }
        for &fk in db.col("lineitem", "l_partkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_parts);
        }
        for &fk in db.col("lineitem", "l_suppkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_suppliers);
        }
        for &fk in db.col("orders", "o_custkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_customers);
        }
    }

    #[test]
    fn scale_factor_controls_row_counts() {
        let small = TpchDb::generate(TpchConfig::new(0.001));
        let large = TpchDb::generate(TpchConfig::new(0.004));
        assert!(large.lineitem_rows() > 2 * small.lineitem_rows());
        assert!(large.payload_bytes() > small.payload_bytes());
    }

    #[test]
    fn string_literals_resolve_to_codes() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let code = db.code("customer", "c_mktsegment", "BUILDING");
        assert!(code >= 0);
        assert_eq!(db.decode("customer", "c_mktsegment", code), "BUILDING");
        // Unknown literals resolve to a sentinel that matches nothing.
        let missing = db.code("customer", "c_mktsegment", "NOT A SEGMENT");
        assert!(!db.col("customer", "c_mktsegment").as_i32().unwrap().contains(&missing));
    }

    #[test]
    fn date_ranges_match_tpch() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let lo = date_to_days(1992, 1, 1);
        let hi = date_to_days(1998, 12, 31);
        for &d in db.col("orders", "o_orderdate").as_i32().unwrap() {
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn chunked_registration_streams_without_materializing() {
        let config = TpchConfig { scale_factor: 0.002, seed: 7 };
        let mut catalog = Catalog::new();
        register_chunked(&mut catalog, &config, 4);
        let lineitem = catalog.chunked_table("lineitem").expect("registered");
        assert_eq!(lineitem.chunk_count(), 4);
        let mut rows = 0;
        let visited = lineitem.scan(|_, group| rows += group.rows());
        assert_eq!(rows, visited);
        assert_eq!(rows, lineitem.rows());
        // Literal resolution works without any materialised column.
        assert!(catalog.encode_literal("customer", "c_mktsegment", "BUILDING").is_some());
        assert!(catalog.table("lineitem").is_none(), "nothing materialised");
    }

    #[test]
    fn order_date_rederivation_matches_orders_table() {
        let config = TpchConfig { scale_factor: 0.002, seed: 11 };
        let db = TpchDb::generate(config.clone());
        let dates = db.col("orders", "o_orderdate").as_i32().unwrap();
        for (i, &d) in dates.iter().enumerate().step_by(37) {
            assert_eq!(order_date(config.seed, i), d, "order {i}");
        }
    }
}
