//! Deterministic TPC-H-style data generator for the modified schema.
//!
//! The generator reproduces the *shape* of TPC-H data — the table
//! cardinality ratios, the PK/FK relationships, the value domains and the
//! date ranges the queries filter on — with a seeded pseudo-random number
//! generator. It is not the official `dbgen` (no text corpus, no V2
//! comments), but every column the fourteen evaluated queries touch is
//! present with realistic distributions, which is what the performance
//! comparison needs.
//!
//! Scale: at scale factor 1.0 the generator would produce the official row
//! counts (6 M lineitems). Benchmarks use fractional scale factors; row
//! counts scale linearly with a floor that keeps the dimension tables
//! non-degenerate.

use ocelot_storage::types::date_to_days;
use ocelot_storage::{Bat, Catalog, ColumnType, StringDictionary, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = official row counts; benchmarks use
    /// fractions such as 0.01).
    pub scale_factor: f64,
    /// RNG seed; equal seeds produce identical databases.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { scale_factor: 0.01, seed: 42 }
    }
}

impl TpchConfig {
    /// Convenience constructor.
    pub fn new(scale_factor: f64) -> TpchConfig {
        TpchConfig { scale_factor, ..Default::default() }
    }
}

/// A generated TPC-H database: the catalog plus the dictionaries used to
/// encode its string columns.
#[derive(Debug, Clone)]
pub struct TpchDb {
    catalog: Catalog,
    config: TpchConfig,
}

const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIPINSTRUCT: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const RETURNFLAGS: [&str; 3] = ["R", "A", "N"];
const LINESTATUS: [&str; 2] = ["O", "F"];
const BRANDS: [&str; 25] = [
    "Brand#11", "Brand#12", "Brand#13", "Brand#14", "Brand#15", "Brand#21", "Brand#22", "Brand#23",
    "Brand#24", "Brand#25", "Brand#31", "Brand#32", "Brand#33", "Brand#34", "Brand#35", "Brand#41",
    "Brand#42", "Brand#43", "Brand#44", "Brand#45", "Brand#51", "Brand#52", "Brand#53", "Brand#54",
    "Brand#55",
];
const CONTAINERS: [&str; 8] =
    ["SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX", "MED PKG", "LG BOX"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD POLISHED TIN",
    "PROMO BURNISHED COPPER",
    "SMALL PLATED BRASS",
    "LARGE BRUSHED NICKEL",
    "MEDIUM ANODIZED COPPER",
];

fn scaled(base: usize, sf: f64, min: usize) -> usize {
    ((base as f64 * sf).round() as usize).max(min)
}

impl TpchDb {
    /// Generates a database for the given configuration.
    pub fn generate(config: TpchConfig) -> TpchDb {
        let sf = config.scale_factor;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut catalog = Catalog::new();

        let num_suppliers = scaled(10_000, sf, 20);
        let num_customers = scaled(150_000, sf, 50);
        let num_parts = scaled(200_000, sf, 50);
        let num_orders = scaled(1_500_000, sf, 200);
        let num_partsupp = num_parts * 4;

        // ---- region ----
        let mut region_dict = StringDictionary::new();
        let r_name: Vec<i32> = REGIONS.iter().map(|r| region_dict.encode(r)).collect();
        let region = Table::new("region")
            .with_column(
                "r_regionkey",
                Bat::from_i32("r_regionkey", (0..5).collect()).with_key(true).into_ref(),
            )
            .with_column(
                "r_name",
                Bat::from_i32_typed("r_name", r_name, ColumnType::StrCode).into_ref(),
            );
        catalog.add_table(region);
        catalog.add_dictionary("region", "r_name", region_dict);

        // ---- nation ----
        let mut nation_dict = StringDictionary::new();
        let n_name: Vec<i32> = NATIONS.iter().map(|(n, _)| nation_dict.encode(n)).collect();
        let n_regionkey: Vec<i32> = NATIONS.iter().map(|(_, r)| *r).collect();
        let nation = Table::new("nation")
            .with_column(
                "n_nationkey",
                Bat::from_i32("n_nationkey", (0..25).collect()).with_key(true).into_ref(),
            )
            .with_column(
                "n_name",
                Bat::from_i32_typed("n_name", n_name, ColumnType::StrCode).into_ref(),
            )
            .with_column("n_regionkey", Bat::from_i32("n_regionkey", n_regionkey).into_ref());
        catalog.add_table(nation);
        catalog.add_dictionary("nation", "n_name", nation_dict);

        // ---- supplier ----
        let mut supplier_name_dict = StringDictionary::new();
        let s_name: Vec<i32> = (0..num_suppliers)
            .map(|i| supplier_name_dict.encode(&format!("Supplier#{i:09}")))
            .collect();
        let s_nationkey: Vec<i32> = (0..num_suppliers).map(|_| rng.gen_range(0..25)).collect();
        let supplier = Table::new("supplier")
            .with_column(
                "s_suppkey",
                Bat::from_i32("s_suppkey", (0..num_suppliers as i32).collect())
                    .with_key(true)
                    .into_ref(),
            )
            .with_column(
                "s_name",
                Bat::from_i32_typed("s_name", s_name, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "s_nationkey",
                Bat::from_i32("s_nationkey", s_nationkey.clone()).into_ref(),
            );
        catalog.add_table(supplier);
        catalog.add_dictionary("supplier", "s_name", supplier_name_dict);

        // ---- customer ----
        let mut segment_dict = StringDictionary::new();
        let c_mktsegment: Vec<i32> = (0..num_customers)
            .map(|_| segment_dict.encode(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]))
            .collect();
        let c_nationkey: Vec<i32> = (0..num_customers).map(|_| rng.gen_range(0..25)).collect();
        let c_acctbal: Vec<f32> =
            (0..num_customers).map(|_| rng.gen_range(-999.99..9999.99)).collect();
        let customer = Table::new("customer")
            .with_column(
                "c_custkey",
                Bat::from_i32("c_custkey", (0..num_customers as i32).collect())
                    .with_key(true)
                    .into_ref(),
            )
            .with_column(
                "c_mktsegment",
                Bat::from_i32_typed("c_mktsegment", c_mktsegment, ColumnType::StrCode).into_ref(),
            )
            .with_column("c_nationkey", Bat::from_i32("c_nationkey", c_nationkey).into_ref())
            .with_column("c_acctbal", Bat::from_f32("c_acctbal", c_acctbal).into_ref());
        catalog.add_table(customer);
        catalog.add_dictionary("customer", "c_mktsegment", segment_dict);

        // ---- part ----
        let mut brand_dict = StringDictionary::new();
        let mut container_dict = StringDictionary::new();
        let mut type_dict = StringDictionary::new();
        let p_brand: Vec<i32> = (0..num_parts)
            .map(|_| brand_dict.encode(BRANDS[rng.gen_range(0..BRANDS.len())]))
            .collect();
        let p_container: Vec<i32> = (0..num_parts)
            .map(|_| container_dict.encode(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]))
            .collect();
        let p_type: Vec<i32> = (0..num_parts)
            .map(|_| type_dict.encode(TYPES[rng.gen_range(0..TYPES.len())]))
            .collect();
        let p_size: Vec<i32> = (0..num_parts).map(|_| rng.gen_range(1..=50)).collect();
        let p_retailprice: Vec<f32> =
            (0..num_parts).map(|_| rng.gen_range(900.0..2100.0)).collect();
        let part = Table::new("part")
            .with_column(
                "p_partkey",
                Bat::from_i32("p_partkey", (0..num_parts as i32).collect())
                    .with_key(true)
                    .into_ref(),
            )
            .with_column(
                "p_brand",
                Bat::from_i32_typed("p_brand", p_brand, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "p_container",
                Bat::from_i32_typed("p_container", p_container, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "p_type",
                Bat::from_i32_typed("p_type", p_type, ColumnType::StrCode).into_ref(),
            )
            .with_column("p_size", Bat::from_i32("p_size", p_size).into_ref())
            .with_column("p_retailprice", Bat::from_f32("p_retailprice", p_retailprice).into_ref());
        catalog.add_table(part);
        catalog.add_dictionary("part", "p_brand", brand_dict);
        catalog.add_dictionary("part", "p_container", container_dict);
        catalog.add_dictionary("part", "p_type", type_dict);

        // ---- partsupp ----
        let ps_partkey: Vec<i32> = (0..num_partsupp).map(|i| (i / 4) as i32).collect();
        let ps_suppkey: Vec<i32> =
            (0..num_partsupp).map(|_| rng.gen_range(0..num_suppliers as i32)).collect();
        let ps_supplycost: Vec<f32> =
            (0..num_partsupp).map(|_| rng.gen_range(1.0..1000.0)).collect();
        let ps_availqty: Vec<f32> = (0..num_partsupp).map(|_| rng.gen_range(1.0..9999.0)).collect();
        let partsupp = Table::new("partsupp")
            .with_column("ps_partkey", Bat::from_i32("ps_partkey", ps_partkey).into_ref())
            .with_column("ps_suppkey", Bat::from_i32("ps_suppkey", ps_suppkey).into_ref())
            .with_column("ps_supplycost", Bat::from_f32("ps_supplycost", ps_supplycost).into_ref())
            .with_column("ps_availqty", Bat::from_f32("ps_availqty", ps_availqty).into_ref());
        catalog.add_table(partsupp);

        // ---- orders ----
        let start_date = date_to_days(1992, 1, 1);
        let end_date = date_to_days(1998, 8, 2);
        let mut priority_dict = StringDictionary::new();
        let mut status_dict = StringDictionary::new();
        let o_custkey: Vec<i32> =
            (0..num_orders).map(|_| rng.gen_range(0..num_customers as i32)).collect();
        let o_orderdate: Vec<i32> =
            (0..num_orders).map(|_| rng.gen_range(start_date..=end_date)).collect();
        let o_orderpriority: Vec<i32> = (0..num_orders)
            .map(|_| priority_dict.encode(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]))
            .collect();
        let o_orderstatus: Vec<i32> = (0..num_orders)
            .map(|i| {
                // Roughly half the orders are fully shipped ('F').
                let status = if i % 2 == 0 { "F" } else { "O" };
                status_dict.encode(status)
            })
            .collect();
        let o_shippriority: Vec<i32> = vec![0; num_orders];
        let orders = Table::new("orders")
            .with_column(
                "o_orderkey",
                Bat::from_i32("o_orderkey", (0..num_orders as i32).collect())
                    .with_key(true)
                    .into_ref(),
            )
            .with_column("o_custkey", Bat::from_i32("o_custkey", o_custkey).into_ref())
            .with_column(
                "o_orderdate",
                Bat::from_i32_typed("o_orderdate", o_orderdate.clone(), ColumnType::Date)
                    .into_ref(),
            )
            .with_column(
                "o_orderpriority",
                Bat::from_i32_typed("o_orderpriority", o_orderpriority, ColumnType::StrCode)
                    .into_ref(),
            )
            .with_column(
                "o_orderstatus",
                Bat::from_i32_typed("o_orderstatus", o_orderstatus, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "o_shippriority",
                Bat::from_i32("o_shippriority", o_shippriority).into_ref(),
            );
        catalog.add_table(orders);
        catalog.add_dictionary("orders", "o_orderpriority", priority_dict);
        catalog.add_dictionary("orders", "o_orderstatus", status_dict);

        // ---- lineitem ----
        let mut shipmode_dict = StringDictionary::new();
        let mut instruct_dict = StringDictionary::new();
        let mut returnflag_dict = StringDictionary::new();
        let mut linestatus_dict = StringDictionary::new();
        let mut l_orderkey = Vec::new();
        let mut l_partkey = Vec::new();
        let mut l_suppkey = Vec::new();
        let mut l_quantity = Vec::new();
        let mut l_extendedprice = Vec::new();
        let mut l_discount = Vec::new();
        let mut l_tax = Vec::new();
        let mut l_returnflag = Vec::new();
        let mut l_linestatus = Vec::new();
        let mut l_shipdate = Vec::new();
        let mut l_commitdate = Vec::new();
        let mut l_receiptdate = Vec::new();
        let mut l_shipmode = Vec::new();
        let mut l_shipinstruct = Vec::new();
        #[allow(clippy::needless_range_loop)] // `order` is also the order key itself
        for order in 0..num_orders {
            let lines = rng.gen_range(1..=7);
            for _ in 0..lines {
                l_orderkey.push(order as i32);
                l_partkey.push(rng.gen_range(0..num_parts as i32));
                l_suppkey.push(rng.gen_range(0..num_suppliers as i32));
                l_quantity.push(rng.gen_range(1..=50) as f32);
                l_extendedprice.push(rng.gen_range(900.0..105_000.0f32));
                l_discount.push((rng.gen_range(0..=10) as f32) / 100.0);
                l_tax.push((rng.gen_range(0..=8) as f32) / 100.0);
                l_returnflag
                    .push(returnflag_dict.encode(RETURNFLAGS[rng.gen_range(0..RETURNFLAGS.len())]));
                l_linestatus
                    .push(linestatus_dict.encode(LINESTATUS[rng.gen_range(0..LINESTATUS.len())]));
                let ship = o_orderdate[order] + rng.gen_range(1..=121);
                let commit = ship + rng.gen_range(-30..=30);
                let receipt = ship + rng.gen_range(1..=30);
                l_shipdate.push(ship);
                l_commitdate.push(commit);
                l_receiptdate.push(receipt);
                l_shipmode.push(shipmode_dict.encode(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]));
                l_shipinstruct
                    .push(instruct_dict.encode(SHIPINSTRUCT[rng.gen_range(0..SHIPINSTRUCT.len())]));
            }
        }
        let lineitem = Table::new("lineitem")
            .with_column("l_orderkey", Bat::from_i32("l_orderkey", l_orderkey).into_ref())
            .with_column("l_partkey", Bat::from_i32("l_partkey", l_partkey).into_ref())
            .with_column("l_suppkey", Bat::from_i32("l_suppkey", l_suppkey).into_ref())
            .with_column("l_quantity", Bat::from_f32("l_quantity", l_quantity).into_ref())
            .with_column(
                "l_extendedprice",
                Bat::from_f32("l_extendedprice", l_extendedprice).into_ref(),
            )
            .with_column("l_discount", Bat::from_f32("l_discount", l_discount).into_ref())
            .with_column("l_tax", Bat::from_f32("l_tax", l_tax).into_ref())
            .with_column(
                "l_returnflag",
                Bat::from_i32_typed("l_returnflag", l_returnflag, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "l_linestatus",
                Bat::from_i32_typed("l_linestatus", l_linestatus, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "l_shipdate",
                Bat::from_i32_typed("l_shipdate", l_shipdate, ColumnType::Date).into_ref(),
            )
            .with_column(
                "l_commitdate",
                Bat::from_i32_typed("l_commitdate", l_commitdate, ColumnType::Date).into_ref(),
            )
            .with_column(
                "l_receiptdate",
                Bat::from_i32_typed("l_receiptdate", l_receiptdate, ColumnType::Date).into_ref(),
            )
            .with_column(
                "l_shipmode",
                Bat::from_i32_typed("l_shipmode", l_shipmode, ColumnType::StrCode).into_ref(),
            )
            .with_column(
                "l_shipinstruct",
                Bat::from_i32_typed("l_shipinstruct", l_shipinstruct, ColumnType::StrCode)
                    .into_ref(),
            );
        catalog.add_table(lineitem);
        catalog.add_dictionary("lineitem", "l_shipmode", shipmode_dict);
        catalog.add_dictionary("lineitem", "l_shipinstruct", instruct_dict);
        catalog.add_dictionary("lineitem", "l_returnflag", returnflag_dict);
        catalog.add_dictionary("lineitem", "l_linestatus", linestatus_dict);

        TpchDb { catalog, config }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The generator configuration this database was built with.
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Convenience accessor for a column BAT. Panics on unknown columns (a
    /// query referencing a missing column is a programming error).
    pub fn col(&self, table: &str, column: &str) -> &ocelot_storage::BatRef {
        self.catalog
            .column(table, column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"))
    }

    /// The dictionary code of a string literal in `table.column`, or a
    /// sentinel that matches nothing when the literal never occurs.
    pub fn code(&self, table: &str, column: &str, literal: &str) -> i32 {
        self.catalog.encode_literal(table, column, literal).unwrap_or(i32::MIN + 1)
    }

    /// Decodes a dictionary code back to its string (for result rendering).
    pub fn decode(&self, table: &str, column: &str, code: i32) -> String {
        self.catalog
            .dictionary(table, column)
            .and_then(|d| d.decode(code))
            .unwrap_or("<unknown>")
            .to_string()
    }

    /// Total payload bytes across the database (the "input size" axis of the
    /// scaling experiments).
    pub fn payload_bytes(&self) -> usize {
        self.catalog.payload_bytes()
    }

    /// Number of lineitem rows (the dominant table).
    pub fn lineitem_rows(&self) -> usize {
        self.catalog.table("lineitem").map(|t| t.row_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 7 });
        let b = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 7 });
        assert_eq!(a.lineitem_rows(), b.lineitem_rows());
        assert_eq!(
            a.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50],
            b.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50]
        );
        let c = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 8 });
        assert_ne!(
            a.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50],
            c.col("lineitem", "l_extendedprice").as_f32().unwrap()[..50]
        );
    }

    #[test]
    fn schema_has_all_query_columns() {
        let db = TpchDb::generate(TpchConfig::new(0.001));
        for (table, column) in [
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipmode"),
            ("orders", "o_orderdate"),
            ("orders", "o_orderpriority"),
            ("customer", "c_mktsegment"),
            ("supplier", "s_nationkey"),
            ("nation", "n_name"),
            ("region", "r_name"),
            ("part", "p_brand"),
            ("partsupp", "ps_supplycost"),
        ] {
            assert!(db.catalog().column(table, column).is_some(), "{table}.{column}");
        }
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let num_orders = db.col("orders", "o_orderkey").len() as i32;
        let num_parts = db.col("part", "p_partkey").len() as i32;
        let num_suppliers = db.col("supplier", "s_suppkey").len() as i32;
        let num_customers = db.col("customer", "c_custkey").len() as i32;
        for &fk in db.col("lineitem", "l_orderkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_orders);
        }
        for &fk in db.col("lineitem", "l_partkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_parts);
        }
        for &fk in db.col("lineitem", "l_suppkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_suppliers);
        }
        for &fk in db.col("orders", "o_custkey").as_i32().unwrap() {
            assert!(fk >= 0 && fk < num_customers);
        }
    }

    #[test]
    fn scale_factor_controls_row_counts() {
        let small = TpchDb::generate(TpchConfig::new(0.001));
        let large = TpchDb::generate(TpchConfig::new(0.004));
        assert!(large.lineitem_rows() > 2 * small.lineitem_rows());
        assert!(large.payload_bytes() > small.payload_bytes());
    }

    #[test]
    fn string_literals_resolve_to_codes() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let code = db.code("customer", "c_mktsegment", "BUILDING");
        assert!(code >= 0);
        assert_eq!(db.decode("customer", "c_mktsegment", code), "BUILDING");
        // Unknown literals resolve to a sentinel that matches nothing.
        let missing = db.code("customer", "c_mktsegment", "NOT A SEGMENT");
        assert!(!db.col("customer", "c_mktsegment").as_i32().unwrap().contains(&missing));
    }

    #[test]
    fn date_ranges_match_tpch() {
        let db = TpchDb::generate(TpchConfig::new(0.002));
        let lo = date_to_days(1992, 1, 1);
        let hi = date_to_days(1998, 12, 31);
        for &d in db.col("orders", "o_orderdate").as_i32().unwrap() {
            assert!(d >= lo && d <= hi);
        }
    }
}
