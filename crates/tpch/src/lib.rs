//! # ocelot-tpch — the paper's modified TPC-H workload
//!
//! The evaluation (paper §5.3, Appendix A) runs a TPC-H derived workload
//! that was adapted to Ocelot's feature set: DECIMAL columns become REAL,
//! strings support equality only (dictionary codes), multi-column sorting
//! and LIMIT clauses are removed, and seven queries that need `LIKE` or
//! eight-byte joins are omitted. The remaining fourteen queries are
//! 1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19 and 21.
//!
//! This crate provides:
//!
//! * [`dbgen`] — a deterministic, seedable TPC-H-style data generator that
//!   produces the modified schema directly in the column-store catalog
//!   (dates as day numbers, strings dictionary-encoded). Scale factors are
//!   fractional: `SF 0.01` ≈ 60 k lineitem rows, so the benchmark harness
//!   can sweep "small / intermediate / large" datasets in reasonable time
//!   while preserving the relative row counts between tables.
//! * [`queries`] — the fourteen queries, written once against the engine's
//!   session/plan API ([`ocelot_engine::Session`] + compiled
//!   [`ocelot_engine::Plan`]s for the multi-operator queries) so the same
//!   query code runs on MS, MP, Ocelot CPU and Ocelot GPU, and so compiled
//!   plans can be admitted to the multi-query scheduler.

pub mod dbgen;
pub mod queries;

pub use dbgen::{TpchConfig, TpchDb};
pub use queries::{
    q12_plan, q3_plan, q4_plan, q6_plan, run_query, QueryError, QueryResult, PORTED_QUERY_IDS,
    QUERY_IDS,
};
