//! # ocelot-tpch — the paper's modified TPC-H workload
//!
//! The evaluation (paper §5.3, Appendix A) runs a TPC-H derived workload
//! that was adapted to Ocelot's feature set: DECIMAL columns become REAL,
//! strings support equality only (dictionary codes), multi-column sorting
//! and LIMIT clauses are removed, and seven queries that need `LIKE` or
//! eight-byte joins are omitted. The remaining fourteen queries are
//! 1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19 and 21.
//!
//! This crate provides:
//!
//! * [`dbgen`] — a deterministic, seedable TPC-H-style data generator that
//!   produces the modified schema directly in the column-store catalog
//!   (dates as day numbers, strings dictionary-encoded). Scale factors are
//!   fractional: `SF 0.01` ≈ 60 k lineitem rows, so the benchmark harness
//!   can sweep "small / intermediate / large" datasets in reasonable time
//!   while preserving the relative row counts between tables.
//! * [`queries`] — the workload, written **declaratively** against the
//!   engine's logical query algebra (`ocelot_engine::query`): each port is
//!   a [`ocelot_engine::Query`] that the rewrite + lowering passes compile
//!   into the same kind-checked [`ocelot_engine::Plan`]s the
//!   session/scheduler stack executes on MS, MP, Ocelot CPU and Ocelot
//!   GPU. Eight queries run through the DSL (Q1, Q3, Q4, Q5, Q6, Q10,
//!   Q12, plus Q14 as an out-of-workload extra the dictionary makes
//!   possible); the pre-DSL hand-built plans survive as parity oracles
//!   behind [`queries::run_query_reference`].

pub mod dbgen;
pub mod queries;

pub use dbgen::{chunked_tables, chunked_tables_by_rows, register_chunked, TpchConfig, TpchDb};
pub use queries::{
    q10_query, q12_plan, q12_queries, q14_query, q1_direct, q1_params, q1_query, q1_query_p,
    q3_params, q3_plan, q3_query, q3_query_p, q4_plan, q4_query, q5_query, q6_params, q6_plan,
    q6_query, q6_query_p, run_query, run_query_reference, QueryError, QueryResult,
    PORTED_QUERY_IDS, QUERY_IDS, REFERENCE_QUERY_IDS,
};
