//! The evaluated TPC-H queries, written once against the engine's
//! session/plan API so the same query runs on MS, MP, Ocelot CPU and Ocelot
//! GPU (paper §5.3, Appendix A).
//!
//! [`QUERY_IDS`] lists the fourteen queries of the paper's modified
//! workload. Ported so far:
//!
//! * **Q1** (grouped-aggregation streamer) — written directly against the
//!   [`Backend`] trait (eight grouped aggregates make it the one query
//!   where the fluent operator calls stay clearer than a plan listing).
//! * **Q3** (select + hash join + group-by + sort) — built as a compiled
//!   [`Plan`]: the first multi-operator DAG through the plan/scheduler
//!   path, exercising joins, grouping and sorting as plan nodes.
//! * **Q6** (selection/arithmetic streamer) — also a compiled [`Plan`];
//!   its PR 2 property (exactly one queue flush per execution on Ocelot)
//!   holds on the plan path and is the per-plan bound the scheduler tests
//!   pin under concurrency.
//! * **Q4** (order priority checking) — `EXISTS` as a semi join over the
//!   quarter's orders; the `l_commitdate < l_receiptdate` column
//!   comparison runs as a float delta + positivity selection.
//! * **Q12** (shipping modes) — candidate-union `IN` predicate, two date
//!   column comparisons, a PK/FK join and *two* count-groupings (all
//!   lines / high-priority lines) whose difference yields the
//!   high/low-priority split.
//!
//! The remaining nine queries are tracked as a ROADMAP item;
//! [`run_query`] returns [`QueryError::Unsupported`] for them so harnesses
//! can skip — structurally, not by pattern-matching on `None`.
//!
//! Results are normalised for comparison across configurations: every cell
//! is an `f64` (dictionary-coded string columns are reported as their
//! codes), and rows are sorted by the leading key columns, so two backends
//! producing the same multiset of rows compare equal.

use ocelot_engine::plan::{Plan, PlanBuilder, PlanError, QueryValue};
use ocelot_engine::{Backend, Session};
use ocelot_storage::types::date_to_days;
use std::fmt;

use crate::dbgen::TpchDb;

/// The fourteen query ids of the paper's modified TPC-H workload.
pub const QUERY_IDS: [u32; 14] = [1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19, 21];

/// A backend-independent query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The TPC-H query number.
    pub query: u32,
    /// Column headers, in output order.
    pub columns: Vec<String>,
    /// Result rows (dictionary codes for string columns), sorted by the
    /// leading key columns for cross-backend comparability.
    pub rows: Vec<Vec<f64>>,
}

impl QueryResult {
    /// Whether two results agree within a floating-point tolerance
    /// (aggregation order differs between configurations, so exact equality
    /// is too strict for float sums).
    pub fn approx_eq(&self, other: &QueryResult, rel_tol: f64) -> bool {
        if self.query != other.query
            || self.columns != other.columns
            || self.rows.len() != other.rows.len()
        {
            return false;
        }
        self.rows.iter().zip(&other.rows).all(|(a, b)| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel_tol * scale
                })
        })
    }
}

/// Why a query could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query is part of the modified workload but not ported yet.
    Unsupported {
        /// The TPC-H query number.
        query: u32,
    },
    /// The query is not part of the paper's modified TPC-H workload.
    NotInWorkload {
        /// The TPC-H query number.
        query: u32,
    },
    /// Plan construction or execution failed.
    Plan(PlanError),
    /// A plan executed but returned a result shape the query code did not
    /// expect (engine/query drift — always a bug, never silently zero).
    MalformedResult {
        /// The TPC-H query number.
        query: u32,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Unsupported { query } => {
                write!(f, "TPC-H Q{query} is not ported yet")
            }
            QueryError::NotInWorkload { query } => {
                write!(f, "Q{query} is not part of the modified TPC-H workload")
            }
            QueryError::Plan(error) => write!(f, "plan error: {error}"),
            QueryError::MalformedResult { query } => {
                write!(f, "Q{query}'s plan returned an unexpected result shape")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PlanError> for QueryError {
    fn from(error: PlanError) -> QueryError {
        QueryError::Plan(error)
    }
}

/// Runs a query in a session. Ported queries return their normalised
/// result; the rest of the workload reports [`QueryError::Unsupported`].
pub fn run_query<B: Backend>(
    session: &Session<B>,
    db: &TpchDb,
    query: u32,
) -> Result<QueryResult, QueryError> {
    match query {
        1 => Ok(q1(session.backend(), db)),
        3 => q3(session, db),
        4 => q4(session, db),
        6 => q6(session, db),
        12 => q12(session, db),
        id if QUERY_IDS.contains(&id) => Err(QueryError::Unsupported { query: id }),
        id => Err(QueryError::NotInWorkload { query: id }),
    }
}

/// The query ids [`run_query`] can execute.
pub const PORTED_QUERY_IDS: [u32; 5] = [1, 3, 4, 6, 12];

fn sort_rows(rows: &mut [Vec<f64>], key_cols: usize) {
    rows.sort_by(|a, b| {
        a[..key_cols]
            .iter()
            .zip(&b[..key_cols])
            .map(|(x, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn floats(value: &QueryValue) -> Vec<f64> {
    match value {
        QueryValue::Scalar(s) => vec![*s as f64],
        QueryValue::IntColumn(v) => v.iter().map(|x| *x as f64).collect(),
        QueryValue::FloatColumn(v) => v.iter().map(|x| *x as f64).collect(),
        QueryValue::OidColumn(v) => v.iter().map(|x| *x as f64).collect(),
    }
}

/// Q1 — pricing summary report: grouped aggregation over ~98% of lineitem.
fn q1<B: Backend>(b: &B, db: &TpchDb) -> QueryResult {
    let shipdate = b.bat(db.col("lineitem", "l_shipdate"));
    let cands = b.select_range_i32(&shipdate, i32::MIN, date_to_days(1998, 9, 2), None);

    let returnflag = b.fetch(&b.bat(db.col("lineitem", "l_returnflag")), &cands);
    let linestatus = b.fetch(&b.bat(db.col("lineitem", "l_linestatus")), &cands);
    let quantity = b.fetch(&b.bat(db.col("lineitem", "l_quantity")), &cands);
    let price = b.fetch(&b.bat(db.col("lineitem", "l_extendedprice")), &cands);
    let discount = b.fetch(&b.bat(db.col("lineitem", "l_discount")), &cands);
    let tax = b.fetch(&b.bat(db.col("lineitem", "l_tax")), &cands);

    // disc_price = price * (1 - discount); charge = disc_price * (1 + tax)
    let one_minus_disc = b.const_minus_f32(1.0, &discount);
    let disc_price = b.mul_f32(&price, &one_minus_disc);
    let one_plus_tax = b.const_plus_f32(1.0, &tax);
    let charge = b.mul_f32(&disc_price, &one_plus_tax);

    let groups = b.group_by(&[&returnflag, &linestatus]);
    let sum_qty = b.to_f32(&b.grouped_sum_f32(&quantity, &groups));
    let sum_price = b.to_f32(&b.grouped_sum_f32(&price, &groups));
    let sum_disc_price = b.to_f32(&b.grouped_sum_f32(&disc_price, &groups));
    let sum_charge = b.to_f32(&b.grouped_sum_f32(&charge, &groups));
    let avg_qty = b.to_f32(&b.grouped_avg_f32(&quantity, &groups));
    let avg_price = b.to_f32(&b.grouped_avg_f32(&price, &groups));
    let avg_disc = b.to_f32(&b.grouped_avg_f32(&discount, &groups));
    let counts = b.to_f32(&b.grouped_count(&groups));

    // The representatives carry the grouping key values.
    let rf_keys = b.to_i32(&b.fetch(&returnflag, &groups.representatives));
    let ls_keys = b.to_i32(&b.fetch(&linestatus, &groups.representatives));

    let mut rows: Vec<Vec<f64>> = (0..groups.num_groups)
        .map(|g| {
            vec![
                rf_keys[g] as f64,
                ls_keys[g] as f64,
                sum_qty[g] as f64,
                sum_price[g] as f64,
                sum_disc_price[g] as f64,
                sum_charge[g] as f64,
                avg_qty[g] as f64,
                avg_price[g] as f64,
                avg_disc[g] as f64,
                counts[g] as f64,
            ]
        })
        .collect();
    sort_rows(&mut rows, 2);
    QueryResult {
        query: 1,
        columns: [
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// The compiled plan of Q3 — shipping priority: customers of one market
/// segment, joined through orders into lineitem, grouped per order and
/// sorted by revenue.
///
/// The DAG exercises every multi-operator node kind: two FK/PK hash joins
/// (whose build restart checks are host-resolve points), a three-column
/// group-by (group count resolve), per-group sums and a descending float
/// sort (pass-schedule resolve) — exactly the points the scheduler can
/// overlap with other queries' device work.
pub fn q3_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let cutoff = date_to_days(1995, 3, 15);
    let segment = db.code("customer", "c_mktsegment", "BUILDING");
    let mut p = PlanBuilder::new();

    // customer: the BUILDING segment and its (unique) keys.
    let mktsegment = p.bind("customer", "c_mktsegment");
    let building = p.select_eq_i32(mktsegment, segment, None)?;
    let custkey = p.bind("customer", "c_custkey");
    let building_keys = p.fetch(custkey, building)?;

    // orders before the cutoff, restricted to those customers.
    let orderdate = p.bind("orders", "o_orderdate");
    let early = p.select_range_i32(orderdate, i32::MIN, cutoff - 1, None)?;
    let o_custkey = p.bind("orders", "o_custkey");
    let early_custkeys = p.fetch(o_custkey, early)?;
    let (order_pos, _) = p.pkfk_join(early_custkeys, building_keys)?;
    let order_oids = p.fetch(early, order_pos)?;
    let orderkey = p.bind("orders", "o_orderkey");
    let qualifying_orderkeys = p.fetch(orderkey, order_oids)?;

    // lineitem shipped after the cutoff, joined to the qualifying orders.
    let shipdate = p.bind("lineitem", "l_shipdate");
    let late = p.select_range_i32(shipdate, cutoff + 1, i32::MAX, None)?;
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let late_orderkeys = p.fetch(l_orderkey, late)?;
    let (line_pos, order_match) = p.pkfk_join(late_orderkeys, qualifying_orderkeys)?;
    let line_oids = p.fetch(late, line_pos)?;
    let line_orders = p.fetch(order_oids, order_match)?;

    // revenue = sum(l_extendedprice * (1 - l_discount)) per group.
    let price = p.bind("lineitem", "l_extendedprice");
    let price_sel = p.fetch(price, line_oids)?;
    let discount = p.bind("lineitem", "l_discount");
    let discount_sel = p.fetch(discount, line_oids)?;
    let one_minus = p.const_minus_f32(1.0, discount_sel)?;
    let revenue = p.mul_f32(price_sel, one_minus)?;

    // Group by (l_orderkey, o_orderdate, o_shippriority).
    let key_orderkey = p.fetch(l_orderkey, line_oids)?;
    let key_orderdate = p.fetch(orderdate, line_orders)?;
    let shippriority = p.bind("orders", "o_shippriority");
    let key_priority = p.fetch(shippriority, line_orders)?;
    let group = p.group_by(&[key_orderkey, key_orderdate, key_priority])?;
    let revenue_per_group = p.grouped_sum_f32(revenue, group)?;
    let reps = p.group_reps(group)?;
    let out_orderkey = p.fetch(key_orderkey, reps)?;
    let out_orderdate = p.fetch(key_orderdate, reps)?;
    let out_priority = p.fetch(key_priority, reps)?;

    // ORDER BY revenue DESC, materialised through the sort permutation.
    let order = p.sort_order_f32(revenue_per_group, true)?;
    let sorted_orderkey = p.fetch(out_orderkey, order)?;
    let sorted_revenue = p.fetch(revenue_per_group, order)?;
    let sorted_orderdate = p.fetch(out_orderdate, order)?;
    let sorted_priority = p.fetch(out_priority, order)?;
    p.result(&[sorted_orderkey, sorted_revenue, sorted_orderdate, sorted_priority])?;
    Ok(p.finish())
}

/// Q3 — shipping priority, through the session/plan path.
fn q3<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let plan = q3_plan(db)?;
    let values = session.run(&plan, db.catalog())?;
    let [orderkeys, revenues, orderdates, priorities] = values.as_slice() else {
        return Err(QueryError::MalformedResult { query: 3 });
    };
    let (orderkeys, revenues) = (floats(orderkeys), floats(revenues));
    let (orderdates, priorities) = (floats(orderdates), floats(priorities));
    let mut rows: Vec<Vec<f64>> = (0..orderkeys.len())
        .map(|i| vec![orderkeys[i], revenues[i], orderdates[i], priorities[i]])
        .collect();
    // The plan orders by revenue; normalise by the (unique) order key so
    // backends with different sort tie-breaking compare equal.
    sort_rows(&mut rows, 1);
    Ok(QueryResult {
        query: 3,
        columns: ["l_orderkey", "revenue", "o_orderdate", "o_shippriority"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    })
}

/// The compiled plan of Q4 — order priority checking: orders of one
/// quarter with at least one lineitem received later than committed
/// (`EXISTS` via semi join), counted per order priority.
///
/// The date comparison `l_commitdate < l_receiptdate` is evaluated as a
/// float subtraction plus a positivity selection (day-number deltas are
/// small integers, exact in `f32`), so the whole plan stays on the
/// existing operator set.
pub fn q4_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let _ = db; // Q4's literals are scale-independent.
    let lo = date_to_days(1993, 7, 1);
    let hi = date_to_days(1993, 10, 1) - 1;
    let mut p = PlanBuilder::new();

    // lineitems received after their commit date.
    let commit = p.bind("lineitem", "l_commitdate");
    let receipt = p.bind("lineitem", "l_receiptdate");
    let commit_f = p.cast_i32_f32(commit)?;
    let receipt_f = p.cast_i32_f32(receipt)?;
    let lag = p.sub_f32(receipt_f, commit_f)?;
    let lagging = p.select_range_f32(lag, 0.5, f32::MAX, None)?;
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let lagging_orderkeys = p.fetch(l_orderkey, lagging)?;

    // orders of the quarter, restricted to those with a lagging lineitem.
    let orderdate = p.bind("orders", "o_orderdate");
    let window = p.select_range_i32(orderdate, lo, hi, None)?;
    let o_orderkey = p.bind("orders", "o_orderkey");
    let window_keys = p.fetch(o_orderkey, window)?;
    let matching = p.semi_join(window_keys, lagging_orderkeys)?;
    let order_oids = p.fetch(window, matching)?;

    // count(*) per priority, ordered by priority code.
    let priority = p.bind("orders", "o_orderpriority");
    let prio = p.fetch(priority, order_oids)?;
    let group = p.group_by(&[prio])?;
    let counts = p.grouped_count(group)?;
    let reps = p.group_reps(group)?;
    let keys = p.fetch(prio, reps)?;
    let order = p.sort_order_i32(keys, false)?;
    let sorted_keys = p.fetch(keys, order)?;
    let sorted_counts = p.fetch(counts, order)?;
    p.result(&[sorted_keys, sorted_counts])?;
    Ok(p.finish())
}

/// Q4 — order priority checking, through the session/plan path.
fn q4<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let plan = q4_plan(db)?;
    let values = session.run(&plan, db.catalog())?;
    let [keys, counts] = values.as_slice() else {
        return Err(QueryError::MalformedResult { query: 4 });
    };
    let (keys, counts) = (floats(keys), floats(counts));
    let mut rows: Vec<Vec<f64>> = (0..keys.len()).map(|i| vec![keys[i], counts[i]]).collect();
    sort_rows(&mut rows, 1);
    Ok(QueryResult {
        query: 4,
        columns: ["o_orderpriority", "order_count"].iter().map(|s| s.to_string()).collect(),
        rows,
    })
}

/// The compiled plan of Q12 — shipping modes and order priority: lineitems
/// of two ship modes received in 1994 and shipped/committed/received in
/// order, joined to their orders and counted per ship mode, split into
/// high-priority (`1-URGENT`/`2-HIGH`) and other orders.
///
/// The split is produced as two groupings over the joined lines (all
/// lines, and the high-priority subset); the host side derives
/// `low = all - high` per mode — there is no conditional-sum operator, and
/// two count-groupings keep the plan on the shared operator set.
pub fn q12_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let lo = date_to_days(1994, 1, 1);
    let hi = date_to_days(1995, 1, 1) - 1;
    let mail = db.code("lineitem", "l_shipmode", "MAIL");
    let ship = db.code("lineitem", "l_shipmode", "SHIP");
    let urgent = db.code("orders", "o_orderpriority", "1-URGENT");
    let high = db.code("orders", "o_orderpriority", "2-HIGH");
    let mut p = PlanBuilder::new();

    // Receipt year and the two ship modes (IN via candidate union).
    let receipt = p.bind("lineitem", "l_receiptdate");
    let in_year = p.select_range_i32(receipt, lo, hi, None)?;
    let shipmode = p.bind("lineitem", "l_shipmode");
    let mail_sel = p.select_eq_i32(shipmode, mail, Some(in_year))?;
    let ship_sel = p.select_eq_i32(shipmode, ship, Some(in_year))?;
    let by_mode = p.union_oids(mail_sel, ship_sel)?;

    // l_commitdate < l_receiptdate and l_shipdate < l_commitdate.
    let commit = p.bind("lineitem", "l_commitdate");
    let commit_f = p.cast_i32_f32(commit)?;
    let receipt_f = p.cast_i32_f32(receipt)?;
    let commit_lag = p.sub_f32(receipt_f, commit_f)?;
    let commit_ok = p.select_range_f32(commit_lag, 0.5, f32::MAX, Some(by_mode))?;
    let shipdate = p.bind("lineitem", "l_shipdate");
    let ship_f = p.cast_i32_f32(shipdate)?;
    let ship_lag = p.sub_f32(commit_f, ship_f)?;
    let qualifying = p.select_range_f32(ship_lag, 0.5, f32::MAX, Some(commit_ok))?;

    // Join the qualifying lineitems to their orders.
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let line_keys = p.fetch(l_orderkey, qualifying)?;
    let o_orderkey = p.bind("orders", "o_orderkey");
    let (line_pos, order_oids) = p.pkfk_join(line_keys, o_orderkey)?;
    let line_oids = p.fetch(qualifying, line_pos)?;
    let mode_per_line = p.fetch(shipmode, line_oids)?;
    let priority = p.bind("orders", "o_orderpriority");
    let prio_per_line = p.fetch(priority, order_oids)?;

    // Counts per ship mode over all joined lines and over the
    // high-priority subset.
    let is_urgent = p.select_eq_i32(prio_per_line, urgent, None)?;
    let is_high = p.select_eq_i32(prio_per_line, high, None)?;
    let high_pos = p.union_oids(is_urgent, is_high)?;
    let mode_high = p.fetch(mode_per_line, high_pos)?;

    let all_group = p.group_by(&[mode_per_line])?;
    let all_counts = p.grouped_count(all_group)?;
    let all_reps = p.group_reps(all_group)?;
    let all_keys = p.fetch(mode_per_line, all_reps)?;
    let high_group = p.group_by(&[mode_high])?;
    let high_counts = p.grouped_count(high_group)?;
    let high_reps = p.group_reps(high_group)?;
    let high_keys = p.fetch(mode_high, high_reps)?;
    p.result(&[all_keys, all_counts, high_keys, high_counts])?;
    Ok(p.finish())
}

/// Q12 — shipping modes and order priority, through the session/plan path.
fn q12<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let plan = q12_plan(db)?;
    let values = session.run(&plan, db.catalog())?;
    let [all_keys, all_counts, high_keys, high_counts] = values.as_slice() else {
        return Err(QueryError::MalformedResult { query: 12 });
    };
    let (all_keys, all_counts) = (floats(all_keys), floats(all_counts));
    let (high_keys, high_counts) = (floats(high_keys), floats(high_counts));
    let mut rows: Vec<Vec<f64>> = all_keys
        .iter()
        .zip(&all_counts)
        .map(|(mode, total)| {
            let high =
                high_keys.iter().position(|k| k == mode).map(|at| high_counts[at]).unwrap_or(0.0);
            vec![*mode, high, total - high]
        })
        .collect();
    sort_rows(&mut rows, 1);
    Ok(QueryResult {
        query: 12,
        columns: ["l_shipmode", "high_line_count", "low_line_count"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    })
}

/// The compiled plan of Q6 — forecasting revenue change: three chained
/// selections, two fetches, a multiply and one deferred scalar sum.
///
/// On the Ocelot backends every node only enqueues device work; the single
/// queue flush happens when the result node reads the one-word revenue
/// scalar back — the PR 2 bound, now held per plan under the scheduler.
pub fn q6_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let _ = db; // Q6's literals are scale-independent; the db fixes no codes.
    let mut p = PlanBuilder::new();
    let shipdate = p.bind("lineitem", "l_shipdate");
    let in_year =
        p.select_range_i32(shipdate, date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1, None)?;
    let discount = p.bind("lineitem", "l_discount");
    let in_discount = p.select_range_f32(discount, 0.05 - 0.001, 0.07 + 0.001, Some(in_year))?;
    let quantity = p.bind("lineitem", "l_quantity");
    let qualifying = p.select_range_f32(quantity, f32::MIN, 23.5, Some(in_discount))?;
    let price = p.bind("lineitem", "l_extendedprice");
    let price_sel = p.fetch(price, qualifying)?;
    let discount_sel = p.fetch(discount, qualifying)?;
    let product = p.mul_f32(price_sel, discount_sel)?;
    let revenue = p.sum_f32(product)?;
    p.result(&[revenue])?;
    Ok(p.finish())
}

/// Q6 — forecasting revenue change, through the session/plan path.
fn q6<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let plan = q6_plan(db)?;
    let values = session.run(&plan, db.catalog())?;
    let [QueryValue::Scalar(revenue)] = values.as_slice() else {
        return Err(QueryError::MalformedResult { query: 6 });
    };
    let revenue = *revenue;
    Ok(QueryResult {
        query: 6,
        columns: vec!["revenue".to_string()],
        rows: vec![vec![revenue as f64]],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::TpchConfig;
    use ocelot_engine::{OcelotBackend, Session};

    fn db() -> TpchDb {
        TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 11 })
    }

    #[test]
    fn ported_queries_agree_across_all_configurations() {
        let db = db();
        let ms = Session::monet_seq();
        let mp = Session::monet_par();
        let ocelot_cpu = Session::new(OcelotBackend::cpu());
        let ocelot_gpu = Session::new(OcelotBackend::gpu());
        for query in PORTED_QUERY_IDS {
            let reference = run_query(&ms, &db, query).unwrap();
            assert!(!reference.rows.is_empty(), "q{query}: reference result empty");
            for (name, result) in [
                ("MP", run_query(&mp, &db, query).unwrap()),
                ("Ocelot CPU", run_query(&ocelot_cpu, &db, query).unwrap()),
                ("Ocelot GPU", run_query(&ocelot_gpu, &db, query).unwrap()),
            ] {
                assert!(
                    result.approx_eq(&reference, 1e-3),
                    "q{query} on {name} diverged:\n{result:?}\nvs reference\n{reference:?}"
                );
            }
        }
    }

    #[test]
    fn q3_exercises_the_dag_path() {
        let db = db();
        let plan = q3_plan(&db).unwrap();
        // The DAG contains the multi-operator nodes the port is about.
        use ocelot_engine::PlanOp;
        let ops: Vec<&str> = plan.nodes().iter().map(|n| n.op.name()).collect();
        for expected in ["select_eq_i32", "pkfk_join", "group_by", "sort_order_f32"] {
            assert!(ops.contains(&expected), "q3 plan lacks {expected}: {ops:?}");
        }
        assert_eq!(
            plan.nodes().iter().filter(|n| matches!(n.op, PlanOp::PkFkJoin)).count(),
            2,
            "customer→orders and orders→lineitem joins"
        );
        // Q3 keeps a reasonable result set at this scale.
        let result = run_query(&Session::monet_seq(), &db, 3).unwrap();
        assert!(result.rows.len() > 5, "suspiciously few rows: {}", result.rows.len());
        // Revenue positive, dates before nothing (sanity).
        assert!(result.rows.iter().all(|r| r[1] > 0.0));
    }

    #[test]
    fn q6_flushes_exactly_once_on_ocelot() {
        // The paper's lazy-evaluation claim, end to end on a real query and
        // through the compiled-plan path: three chained candidate
        // selections, two fetches, a multiply and a sum reach the device in
        // a single flush at the final readback.
        let db = db();
        for backend in [OcelotBackend::cpu(), OcelotBackend::cpu_sequential(), OcelotBackend::gpu()]
        {
            let session = Session::new(backend);
            let before = session.backend().context().queue().flush_count();
            let result = run_query(&session, &db, 6).unwrap();
            assert!(!result.rows.is_empty());
            assert_eq!(
                session.backend().context().queue().flush_count(),
                before + 1,
                "{}: q6 must sync exactly once",
                session.name()
            );
        }
    }

    #[test]
    fn q4_counts_only_orders_with_lagging_lineitems() {
        // Host-side oracle: re-derive Q4 directly from the generated data.
        let db = db();
        let commit = db.col("lineitem", "l_commitdate").as_i32().unwrap();
        let receipt = db.col("lineitem", "l_receiptdate").as_i32().unwrap();
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let lagging: std::collections::HashSet<i32> = l_orderkey
            .iter()
            .zip(commit.iter().zip(receipt))
            .filter(|(_, (c, r))| c < r)
            .map(|(k, _)| *k)
            .collect();
        let orderdate = db.col("orders", "o_orderdate").as_i32().unwrap();
        let priority = db.col("orders", "o_orderpriority").as_i32().unwrap();
        use ocelot_storage::types::date_to_days;
        let (lo, hi) = (date_to_days(1993, 7, 1), date_to_days(1993, 10, 1) - 1);
        let mut expected: std::collections::HashMap<i32, f64> = std::collections::HashMap::new();
        for (order, (&date, &prio)) in orderdate.iter().zip(priority).enumerate() {
            if date >= lo && date <= hi && lagging.contains(&(order as i32)) {
                *expected.entry(prio).or_default() += 1.0;
            }
        }
        let result = run_query(&Session::monet_seq(), &db, 4).unwrap();
        assert!(!result.rows.is_empty());
        assert_eq!(result.rows.len(), expected.len());
        for row in &result.rows {
            assert_eq!(expected.get(&(row[0] as i32)), Some(&row[1]), "priority {}", row[0]);
        }
    }

    #[test]
    fn q12_splits_counts_by_priority() {
        let db = db();
        let result = run_query(&Session::monet_seq(), &db, 12).unwrap();
        assert!(!result.rows.is_empty());
        assert!(result.rows.len() <= 2, "only MAIL and SHIP qualify");
        // Host-side oracle for the per-mode totals and the high/low split.
        use ocelot_storage::types::date_to_days;
        let (lo, hi) = (date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1);
        let mode = db.col("lineitem", "l_shipmode").as_i32().unwrap();
        let shipd = db.col("lineitem", "l_shipdate").as_i32().unwrap();
        let commit = db.col("lineitem", "l_commitdate").as_i32().unwrap();
        let receipt = db.col("lineitem", "l_receiptdate").as_i32().unwrap();
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let priority = db.col("orders", "o_orderpriority").as_i32().unwrap();
        let mail = db.code("lineitem", "l_shipmode", "MAIL");
        let ship = db.code("lineitem", "l_shipmode", "SHIP");
        let urgent = db.code("orders", "o_orderpriority", "1-URGENT");
        let high = db.code("orders", "o_orderpriority", "2-HIGH");
        let mut expected: std::collections::HashMap<i32, (f64, f64)> =
            std::collections::HashMap::new();
        for i in 0..mode.len() {
            let qualifies = (mode[i] == mail || mode[i] == ship)
                && receipt[i] >= lo
                && receipt[i] <= hi
                && commit[i] < receipt[i]
                && shipd[i] < commit[i];
            if qualifies {
                let prio = priority[l_orderkey[i] as usize];
                let entry = expected.entry(mode[i]).or_default();
                if prio == urgent || prio == high {
                    entry.0 += 1.0;
                } else {
                    entry.1 += 1.0;
                }
            }
        }
        assert_eq!(result.rows.len(), expected.len());
        for row in &result.rows {
            let (high_count, low_count) = expected[&(row[0] as i32)];
            assert_eq!((row[1], row[2]), (high_count, low_count), "mode {}", row[0]);
        }
    }

    #[test]
    fn unported_queries_report_structured_errors() {
        let db = db();
        let ms = Session::monet_seq();
        for query in QUERY_IDS {
            let result = run_query(&ms, &db, query);
            if PORTED_QUERY_IDS.contains(&query) {
                assert!(result.is_ok());
            } else {
                assert_eq!(
                    result.unwrap_err(),
                    QueryError::Unsupported { query },
                    "q{query} unexpectedly implemented"
                );
            }
        }
        let err = run_query(&ms, &db, 2).unwrap_err();
        assert_eq!(err, QueryError::NotInWorkload { query: 2 });
        assert!(err.to_string().contains("not part"));
    }
}
