//! The evaluated TPC-H queries, written once against
//! [`ocelot_engine::Backend`] so the same query code runs on MS, MP, Ocelot
//! CPU and Ocelot GPU (paper §5.3, Appendix A).
//!
//! [`QUERY_IDS`] lists the fourteen queries of the paper's modified
//! workload. This module currently ports Q1 (the grouped-aggregation
//! streamer) and Q6 (the selection/arithmetic streamer) — the two queries
//! every hardware-oblivious claim is first measured on; the remaining twelve
//! are tracked as a ROADMAP item and [`run_query`] returns `None` for them
//! so harnesses can skip rather than crash.
//!
//! Results are normalised for comparison across configurations: every cell
//! is an `f64` (dictionary-coded string columns are reported as their
//! codes), and rows are sorted by the leading key columns, so two backends
//! producing the same multiset of rows compare equal.

use ocelot_engine::Backend;
use ocelot_storage::types::date_to_days;

use crate::dbgen::TpchDb;

/// The fourteen query ids of the paper's modified TPC-H workload.
pub const QUERY_IDS: [u32; 14] = [1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19, 21];

/// A backend-independent query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The TPC-H query number.
    pub query: u32,
    /// Column headers, in output order.
    pub columns: Vec<String>,
    /// Result rows (dictionary codes for string columns), sorted by the
    /// leading key columns for cross-backend comparability.
    pub rows: Vec<Vec<f64>>,
}

impl QueryResult {
    /// Whether two results agree within a floating-point tolerance
    /// (aggregation order differs between configurations, so exact equality
    /// is too strict for float sums).
    pub fn approx_eq(&self, other: &QueryResult, rel_tol: f64) -> bool {
        if self.query != other.query
            || self.columns != other.columns
            || self.rows.len() != other.rows.len()
        {
            return false;
        }
        self.rows.iter().zip(&other.rows).all(|(a, b)| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel_tol * scale
                })
        })
    }
}

/// Runs a query on a backend. Returns `None` for queries that are not yet
/// ported (see module docs).
pub fn run_query<B: Backend>(backend: &B, db: &TpchDb, query: u32) -> Option<QueryResult> {
    match query {
        1 => Some(q1(backend, db)),
        6 => Some(q6(backend, db)),
        id if QUERY_IDS.contains(&id) => None,
        id => panic!("query {id} is not part of the modified TPC-H workload"),
    }
}

fn sort_rows(rows: &mut [Vec<f64>], key_cols: usize) {
    rows.sort_by(|a, b| {
        a[..key_cols]
            .iter()
            .zip(&b[..key_cols])
            .map(|(x, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// Q1 — pricing summary report: grouped aggregation over ~98% of lineitem.
fn q1<B: Backend>(b: &B, db: &TpchDb) -> QueryResult {
    let shipdate = b.bat(db.col("lineitem", "l_shipdate"));
    let cands = b.select_range_i32(&shipdate, i32::MIN, date_to_days(1998, 9, 2), None);

    let returnflag = b.fetch(&b.bat(db.col("lineitem", "l_returnflag")), &cands);
    let linestatus = b.fetch(&b.bat(db.col("lineitem", "l_linestatus")), &cands);
    let quantity = b.fetch(&b.bat(db.col("lineitem", "l_quantity")), &cands);
    let price = b.fetch(&b.bat(db.col("lineitem", "l_extendedprice")), &cands);
    let discount = b.fetch(&b.bat(db.col("lineitem", "l_discount")), &cands);
    let tax = b.fetch(&b.bat(db.col("lineitem", "l_tax")), &cands);

    // disc_price = price * (1 - discount); charge = disc_price * (1 + tax)
    let one_minus_disc = b.const_minus_f32(1.0, &discount);
    let disc_price = b.mul_f32(&price, &one_minus_disc);
    let one_plus_tax = b.const_plus_f32(1.0, &tax);
    let charge = b.mul_f32(&disc_price, &one_plus_tax);

    let groups = b.group_by(&[&returnflag, &linestatus]);
    let sum_qty = b.to_f32(&b.grouped_sum_f32(&quantity, &groups));
    let sum_price = b.to_f32(&b.grouped_sum_f32(&price, &groups));
    let sum_disc_price = b.to_f32(&b.grouped_sum_f32(&disc_price, &groups));
    let sum_charge = b.to_f32(&b.grouped_sum_f32(&charge, &groups));
    let avg_qty = b.to_f32(&b.grouped_avg_f32(&quantity, &groups));
    let avg_price = b.to_f32(&b.grouped_avg_f32(&price, &groups));
    let avg_disc = b.to_f32(&b.grouped_avg_f32(&discount, &groups));
    let counts = b.to_f32(&b.grouped_count(&groups));

    // The representatives carry the grouping key values.
    let rf_keys = b.to_i32(&b.fetch(&returnflag, &groups.representatives));
    let ls_keys = b.to_i32(&b.fetch(&linestatus, &groups.representatives));

    let mut rows: Vec<Vec<f64>> = (0..groups.num_groups)
        .map(|g| {
            vec![
                rf_keys[g] as f64,
                ls_keys[g] as f64,
                sum_qty[g] as f64,
                sum_price[g] as f64,
                sum_disc_price[g] as f64,
                sum_charge[g] as f64,
                avg_qty[g] as f64,
                avg_price[g] as f64,
                avg_disc[g] as f64,
                counts[g] as f64,
            ]
        })
        .collect();
    sort_rows(&mut rows, 2);
    QueryResult {
        query: 1,
        columns: [
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

/// Q6 — forecasting revenue change: three selections and one product-sum.
///
/// Written against the deferred API: the candidate chain, fetches, multiply
/// and sum all stay device-resident (each selection's cardinality is a
/// device counter consumed by the next operator), so on the Ocelot backends
/// the whole query performs exactly one queue flush — at the final `to_f32`
/// that hands the revenue back to the host.
fn q6<B: Backend>(b: &B, db: &TpchDb) -> QueryResult {
    let shipdate = b.bat(db.col("lineitem", "l_shipdate"));
    let in_year =
        b.select_range_i32(&shipdate, date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1, None);
    let discount = b.bat(db.col("lineitem", "l_discount"));
    let in_discount = b.select_range_f32(&discount, 0.05 - 0.001, 0.07 + 0.001, Some(&in_year));
    let quantity = b.bat(db.col("lineitem", "l_quantity"));
    let qualifying = b.select_range_f32(&quantity, f32::MIN, 23.5, Some(&in_discount));

    let price_sel = b.fetch(&b.bat(db.col("lineitem", "l_extendedprice")), &qualifying);
    let disc_sel = b.fetch(&discount, &qualifying);
    let revenue_scalar = b.sum_scalar_f32(&b.mul_f32(&price_sel, &disc_sel));
    let revenue = b.to_f32(&revenue_scalar).first().copied().unwrap_or(0.0);

    QueryResult { query: 6, columns: vec!["revenue".to_string()], rows: vec![vec![revenue as f64]] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::TpchConfig;
    use ocelot_engine::{MonetParBackend, MonetSeqBackend, OcelotBackend};

    fn db() -> TpchDb {
        TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 11 })
    }

    #[test]
    fn q1_and_q6_agree_across_all_configurations() {
        let db = db();
        let ms = MonetSeqBackend::new();
        let mp = MonetParBackend::new();
        let ocelot_cpu = OcelotBackend::cpu();
        let ocelot_gpu = OcelotBackend::gpu();
        for query in [1, 6] {
            let reference = run_query(&ms, &db, query).unwrap();
            assert!(!reference.rows.is_empty(), "q{query}: reference result empty");
            for (name, result) in [
                ("MP", run_query(&mp, &db, query).unwrap()),
                ("Ocelot CPU", run_query(&ocelot_cpu, &db, query).unwrap()),
                ("Ocelot GPU", run_query(&ocelot_gpu, &db, query).unwrap()),
            ] {
                assert!(
                    result.approx_eq(&reference, 1e-3),
                    "q{query} on {name} diverged:\n{result:?}\nvs reference\n{reference:?}"
                );
            }
        }
    }

    #[test]
    fn q6_flushes_exactly_once_on_ocelot() {
        // The paper's lazy-evaluation claim, end to end on a real query:
        // three chained candidate selections, two fetches, a multiply and a
        // sum reach the device in a single flush at the final readback.
        let db = db();
        for backend in [OcelotBackend::cpu(), OcelotBackend::cpu_sequential(), OcelotBackend::gpu()]
        {
            let before = backend.context().queue().flush_count();
            let result = run_query(&backend, &db, 6).unwrap();
            assert!(!result.rows.is_empty());
            assert_eq!(
                backend.context().queue().flush_count(),
                before + 1,
                "{}: q6 must sync exactly once",
                backend.name()
            );
        }
    }

    #[test]
    fn unported_queries_return_none() {
        let db = db();
        let ms = MonetSeqBackend::new();
        for query in QUERY_IDS {
            let result = run_query(&ms, &db, query);
            if query == 1 || query == 6 {
                assert!(result.is_some());
            } else {
                assert!(result.is_none(), "q{query} unexpectedly implemented");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not part of the modified TPC-H workload")]
    fn unknown_query_panics() {
        let db = db();
        let ms = MonetSeqBackend::new();
        let _ = run_query(&ms, &db, 2);
    }
}
