//! The evaluated TPC-H queries, expressed in the engine's **logical query
//! algebra** (`ocelot_engine::query`) so the same declarative query runs on
//! MS, MP, Ocelot CPU and Ocelot GPU (paper §5.3, Appendix A) — and so the
//! *engine*, not the query author, picks the physical operators.
//!
//! [`QUERY_IDS`] lists the fourteen queries of the paper's modified
//! workload. Ported through the DSL so far: **Q1, Q3, Q4, Q5, Q6, Q10, Q12
//! and Q14** (Q14 sits outside the modified workload — the paper dropped it
//! for `LIKE` — but the dictionary makes its prefix predicate a code set,
//! so it rides along as the join + single-group pattern).
//!
//! Every `q*_query` function builds a [`Query`] in declarative style —
//! joins first, predicates where SQL puts them — and relies on the rewrite
//! rules (predicate pushdown, selectivity ordering, projection pruning) and
//! the lowering pass to produce the physical plan. The **hand-built plans**
//! that previously implemented Q3/Q4/Q6/Q12 ([`q3_plan`], [`q4_plan`],
//! [`q6_plan`], [`q12_plan`]) and the direct-`Backend` Q1 ([`q1_direct`])
//! are kept verbatim as *oracles*: [`run_query_reference`] executes them,
//! and the parity suites assert the DSL-lowered plans reproduce their
//! results on all four backends.
//!
//! The remaining workload queries are tracked as a ROADMAP item;
//! [`run_query`] returns [`QueryError::Unsupported`] for them so harnesses
//! can skip — structurally, not by pattern-matching on `None`.
//!
//! Results are normalised for comparison across configurations: every cell
//! is an `f64` (dictionary-coded string columns are reported as their
//! codes), and rows are sorted by the leading key columns, so two backends
//! producing the same multiset of rows compare equal.

use ocelot_engine::plan::{Plan, PlanBuilder, PlanError, QueryValue};
use ocelot_engine::query::{col, lit, param, AggSpec, ParamValue, Query, QueryBuildError};
use ocelot_engine::{Backend, Session};
use ocelot_storage::types::date_to_days;
use std::fmt;

use crate::dbgen::TpchDb;

/// The fourteen query ids of the paper's modified TPC-H workload.
pub const QUERY_IDS: [u32; 14] = [1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 15, 17, 19, 21];

/// The query ids [`run_query`] can execute (through the query DSL).
pub const PORTED_QUERY_IDS: [u32; 8] = [1, 3, 4, 5, 6, 10, 12, 14];

/// The query ids [`run_query_reference`] can execute — the hand-built
/// physical oracles the DSL ports are verified against.
pub const REFERENCE_QUERY_IDS: [u32; 5] = [1, 3, 4, 6, 12];

/// A backend-independent query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The TPC-H query number.
    pub query: u32,
    /// Column headers, in output order.
    pub columns: Vec<String>,
    /// Result rows (dictionary codes for string columns), sorted by the
    /// leading key columns for cross-backend comparability.
    pub rows: Vec<Vec<f64>>,
}

impl QueryResult {
    /// Whether two results agree within a floating-point tolerance
    /// (aggregation order differs between configurations, so exact equality
    /// is too strict for float sums).
    pub fn approx_eq(&self, other: &QueryResult, rel_tol: f64) -> bool {
        if self.query != other.query
            || self.columns != other.columns
            || self.rows.len() != other.rows.len()
        {
            return false;
        }
        self.rows.iter().zip(&other.rows).all(|(a, b)| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() <= rel_tol * scale
                })
        })
    }
}

/// Why a query could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query is part of the modified workload but not ported yet.
    Unsupported {
        /// The TPC-H query number.
        query: u32,
    },
    /// The query is not part of the paper's modified TPC-H workload.
    NotInWorkload {
        /// The TPC-H query number.
        query: u32,
    },
    /// The logical query could not be rewritten or lowered.
    Build(QueryBuildError),
    /// Plan construction or execution failed.
    Plan(PlanError),
    /// A plan executed but returned a result shape the query code did not
    /// expect (engine/query drift — always a bug, never silently zero).
    MalformedResult {
        /// The TPC-H query number.
        query: u32,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Unsupported { query } => {
                write!(f, "TPC-H Q{query} is not ported yet")
            }
            QueryError::NotInWorkload { query } => {
                write!(f, "Q{query} is not part of the modified TPC-H workload")
            }
            QueryError::Build(error) => write!(f, "query build error: {error}"),
            QueryError::Plan(error) => write!(f, "plan error: {error}"),
            QueryError::MalformedResult { query } => {
                write!(f, "Q{query}'s plan returned an unexpected result shape")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PlanError> for QueryError {
    fn from(error: PlanError) -> QueryError {
        QueryError::Plan(error)
    }
}

impl From<QueryBuildError> for QueryError {
    fn from(error: QueryBuildError) -> QueryError {
        QueryError::Build(error)
    }
}

/// Runs a query in a session, through the query DSL and its optimizing
/// lowering. Ported queries return their normalised result; the rest of the
/// workload reports [`QueryError::Unsupported`].
pub fn run_query<B: Backend>(
    session: &Session<B>,
    db: &TpchDb,
    query: u32,
) -> Result<QueryResult, QueryError> {
    match query {
        1 => q1(session, db),
        3 => q3(session, db),
        4 => q4(session, db),
        5 => q5(session, db),
        6 => q6(session, db),
        10 => q10(session, db),
        12 => q12(session, db),
        14 => q14(session, db),
        id if QUERY_IDS.contains(&id) => Err(QueryError::Unsupported { query: id }),
        id => Err(QueryError::NotInWorkload { query: id }),
    }
}

/// Runs a query through the **hand-built physical oracle** path (the plans
/// the DSL replaced, kept for parity verification and ablation baselines).
pub fn run_query_reference<B: Backend>(
    session: &Session<B>,
    db: &TpchDb,
    query: u32,
) -> Result<QueryResult, QueryError> {
    match query {
        1 => Ok(q1_direct(session.backend(), db)),
        3 => shape_q3(session.run(&q3_plan(db)?, db.catalog())?),
        4 => shape_q4(session.run(&q4_plan(db)?, db.catalog())?),
        6 => shape_q6(session.run(&q6_plan(db)?, db.catalog())?),
        12 => {
            let values = session.run(&q12_plan(db)?, db.catalog())?;
            let [all_keys, all_counts, high_keys, high_counts] = values.as_slice() else {
                return Err(QueryError::MalformedResult { query: 12 });
            };
            Ok(shape_q12(
                floats(all_keys),
                floats(all_counts),
                floats(high_keys),
                floats(high_counts),
            ))
        }
        id => Err(QueryError::Unsupported { query: id }),
    }
}

fn sort_rows(rows: &mut [Vec<f64>], key_cols: usize) {
    rows.sort_by(|a, b| {
        a[..key_cols]
            .iter()
            .zip(&b[..key_cols])
            .map(|(x, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}

fn floats(value: &QueryValue) -> Vec<f64> {
    match value {
        QueryValue::Scalar(s) => vec![*s as f64],
        QueryValue::IntColumn(v) => v.iter().map(|x| *x as f64).collect(),
        QueryValue::FloatColumn(v) => v.iter().map(|x| *x as f64).collect(),
        QueryValue::OidColumn(v) => v.iter().map(|x| *x as f64).collect(),
    }
}

/// Column-major result values → row-major float rows (all columns must
/// agree in length).
fn rows_from(values: &[QueryValue]) -> Option<Vec<Vec<f64>>> {
    let columns: Vec<Vec<f64>> = values.iter().map(floats).collect();
    let len = columns.first()?.len();
    if columns.iter().any(|c| c.len() != len) {
        return None;
    }
    Some((0..len).map(|row| columns.iter().map(|c| c[row]).collect()).collect())
}

fn result_of(
    query: u32,
    columns: &[&str],
    mut rows: Vec<Vec<f64>>,
    key_cols: usize,
) -> QueryResult {
    sort_rows(&mut rows, key_cols);
    QueryResult { query, columns: columns.iter().map(|s| s.to_string()).collect(), rows }
}

// ===========================================================================
// Q1 — pricing summary report
// ===========================================================================

/// Q1 through the query DSL: one scan-side date filter, two computed
/// columns, an eight-aggregate two-key grouping.
pub fn q1_query(db: &TpchDb) -> Query {
    let _ = db; // Q1's literals are scale-independent.
    Query::scan("lineitem")
        .filter(col("l_shipdate").le(date_to_days(1998, 9, 2)))
        .map("disc_price", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .map("charge", col("disc_price") * (lit(1.0f32) + col("l_tax")))
        .group_by(
            &["l_returnflag", "l_linestatus"],
            &[
                AggSpec::sum("l_quantity", "sum_qty"),
                AggSpec::sum("l_extendedprice", "sum_base_price"),
                AggSpec::sum("disc_price", "sum_disc_price"),
                AggSpec::sum("charge", "sum_charge"),
                AggSpec::avg("l_quantity", "avg_qty"),
                AggSpec::avg("l_extendedprice", "avg_price"),
                AggSpec::avg("l_discount", "avg_disc"),
                AggSpec::count("count_order"),
            ],
        )
}

/// Q1 as a prepared *shape* for the serving layer: the shipdate cutoff is
/// parameter `$0`, so one compiled plan serves every reporting date. Bind
/// with [`q1_params`] to reproduce [`q1_query`] exactly.
pub fn q1_query_p(db: &TpchDb) -> Query {
    let _ = db; // Q1's shape is scale-independent.
    Query::scan("lineitem")
        .filter(col("l_shipdate").le(param(0)))
        .map("disc_price", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .map("charge", col("disc_price") * (lit(1.0f32) + col("l_tax")))
        .group_by(
            &["l_returnflag", "l_linestatus"],
            &[
                AggSpec::sum("l_quantity", "sum_qty"),
                AggSpec::sum("l_extendedprice", "sum_base_price"),
                AggSpec::sum("disc_price", "sum_disc_price"),
                AggSpec::sum("charge", "sum_charge"),
                AggSpec::avg("l_quantity", "avg_qty"),
                AggSpec::avg("l_extendedprice", "avg_price"),
                AggSpec::avg("l_discount", "avg_disc"),
                AggSpec::count("count_order"),
            ],
        )
}

/// The workload's standard binding for [`q1_query_p`]: the 1998-09-02
/// cutoff of [`q1_query`].
pub fn q1_params() -> Vec<ParamValue> {
    vec![date_to_days(1998, 9, 2).into()]
}

const Q1_COLUMNS: [&str; 10] = [
    "l_returnflag",
    "l_linestatus",
    "sum_qty",
    "sum_base_price",
    "sum_disc_price",
    "sum_charge",
    "avg_qty",
    "avg_price",
    "avg_disc",
    "count_order",
];

fn q1<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let values = q1_query(db).run(session, db.catalog())?;
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 1 })?;
    Ok(result_of(1, &Q1_COLUMNS, rows, 2))
}

/// The pre-DSL Q1, written directly against the [`Backend`] trait — kept
/// as the oracle the DSL port is verified against.
pub fn q1_direct<B: Backend>(b: &B, db: &TpchDb) -> QueryResult {
    let shipdate = b.bat(db.col("lineitem", "l_shipdate"));
    let cands = b.select_range_i32(&shipdate, i32::MIN, date_to_days(1998, 9, 2), None);

    let returnflag = b.fetch(&b.bat(db.col("lineitem", "l_returnflag")), &cands);
    let linestatus = b.fetch(&b.bat(db.col("lineitem", "l_linestatus")), &cands);
    let quantity = b.fetch(&b.bat(db.col("lineitem", "l_quantity")), &cands);
    let price = b.fetch(&b.bat(db.col("lineitem", "l_extendedprice")), &cands);
    let discount = b.fetch(&b.bat(db.col("lineitem", "l_discount")), &cands);
    let tax = b.fetch(&b.bat(db.col("lineitem", "l_tax")), &cands);

    // disc_price = price * (1 - discount); charge = disc_price * (1 + tax)
    let one_minus_disc = b.const_minus_f32(1.0, &discount);
    let disc_price = b.mul_f32(&price, &one_minus_disc);
    let one_plus_tax = b.const_plus_f32(1.0, &tax);
    let charge = b.mul_f32(&disc_price, &one_plus_tax);

    let groups = b.group_by(&[&returnflag, &linestatus]);
    let sum_qty = b.to_f32(&b.grouped_sum_f32(&quantity, &groups));
    let sum_price = b.to_f32(&b.grouped_sum_f32(&price, &groups));
    let sum_disc_price = b.to_f32(&b.grouped_sum_f32(&disc_price, &groups));
    let sum_charge = b.to_f32(&b.grouped_sum_f32(&charge, &groups));
    let avg_qty = b.to_f32(&b.grouped_avg_f32(&quantity, &groups));
    let avg_price = b.to_f32(&b.grouped_avg_f32(&price, &groups));
    let avg_disc = b.to_f32(&b.grouped_avg_f32(&discount, &groups));
    let counts = b.to_f32(&b.grouped_count(&groups));

    // The representatives carry the grouping key values.
    let rf_keys = b.to_i32(&b.fetch(&returnflag, &groups.representatives));
    let ls_keys = b.to_i32(&b.fetch(&linestatus, &groups.representatives));

    let rows: Vec<Vec<f64>> = (0..groups.num_groups)
        .map(|g| {
            vec![
                rf_keys[g] as f64,
                ls_keys[g] as f64,
                sum_qty[g] as f64,
                sum_price[g] as f64,
                sum_disc_price[g] as f64,
                sum_charge[g] as f64,
                avg_qty[g] as f64,
                avg_price[g] as f64,
                avg_disc[g] as f64,
                counts[g] as f64,
            ]
        })
        .collect();
    result_of(1, &Q1_COLUMNS, rows, 2)
}

// ===========================================================================
// Q3 — shipping priority
// ===========================================================================

/// Q3 through the query DSL, written declaratively: the three-table join
/// first, all predicates above it (predicate pushdown moves them onto
/// their scans), grouping and ordering last.
pub fn q3_query(db: &TpchDb) -> Query {
    let cutoff = date_to_days(1995, 3, 15);
    let segment = db.code("customer", "c_mktsegment", "BUILDING");
    Query::scan("lineitem")
        .join(
            Query::scan("orders").join(Query::scan("customer"), "o_custkey", "c_custkey"),
            "l_orderkey",
            "o_orderkey",
        )
        .filter(col("c_mktsegment").eq(segment))
        .filter(col("o_orderdate").lt(cutoff))
        .filter(col("l_shipdate").gt(cutoff))
        .map("revenue", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .group_by(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            &[AggSpec::sum("revenue", "revenue")],
        )
        .sort_by("revenue", true)
        .select(&["l_orderkey", "revenue", "o_orderdate", "o_shippriority"])
}

/// Q3 as a prepared shape: the order/ship cutoff date is `$0` (one slot,
/// used by *two* predicates) and the market-segment code is `$1`. Bind
/// with [`q3_params`] to reproduce [`q3_query`] exactly.
pub fn q3_query_p(db: &TpchDb) -> Query {
    let _ = db; // Codes move into the parameter binding.
    Query::scan("lineitem")
        .join(
            Query::scan("orders").join(Query::scan("customer"), "o_custkey", "c_custkey"),
            "l_orderkey",
            "o_orderkey",
        )
        .filter(col("c_mktsegment").eq(param(1)))
        .filter(col("o_orderdate").lt(param(0)))
        .filter(col("l_shipdate").gt(param(0)))
        .map("revenue", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .group_by(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            &[AggSpec::sum("revenue", "revenue")],
        )
        .sort_by("revenue", true)
        .select(&["l_orderkey", "revenue", "o_orderdate", "o_shippriority"])
}

/// The workload's standard binding for [`q3_query_p`]: the 1995-03-15
/// cutoff and the BUILDING segment code of [`q3_query`].
pub fn q3_params(db: &TpchDb) -> Vec<ParamValue> {
    vec![date_to_days(1995, 3, 15).into(), db.code("customer", "c_mktsegment", "BUILDING").into()]
}

fn shape_q3(values: Vec<QueryValue>) -> Result<QueryResult, QueryError> {
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 3 })?;
    // The plan orders by revenue; normalise by the (unique) order key so
    // backends with different sort tie-breaking compare equal.
    Ok(result_of(3, &["l_orderkey", "revenue", "o_orderdate", "o_shippriority"], rows, 1))
}

fn q3<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    shape_q3(q3_query(db).run(session, db.catalog())?)
}

/// The hand-built physical plan of Q3 — the DSL port's oracle.
///
/// The DAG exercises every multi-operator node kind: two FK/PK hash joins
/// (whose build restart checks are host-resolve points), a three-column
/// group-by (group count resolve), per-group sums and a descending float
/// sort (pass-schedule resolve) — exactly the points the scheduler can
/// overlap with other queries' device work.
pub fn q3_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let cutoff = date_to_days(1995, 3, 15);
    let segment = db.code("customer", "c_mktsegment", "BUILDING");
    let mut p = PlanBuilder::new();

    // customer: the BUILDING segment and its (unique) keys.
    let mktsegment = p.bind("customer", "c_mktsegment");
    let building = p.select_eq_i32(mktsegment, segment, None)?;
    let custkey = p.bind("customer", "c_custkey");
    let building_keys = p.fetch(custkey, building)?;

    // orders before the cutoff, restricted to those customers.
    let orderdate = p.bind("orders", "o_orderdate");
    let early = p.select_range_i32(orderdate, i32::MIN, cutoff - 1, None)?;
    let o_custkey = p.bind("orders", "o_custkey");
    let early_custkeys = p.fetch(o_custkey, early)?;
    let (order_pos, _) = p.pkfk_join(early_custkeys, building_keys)?;
    let order_oids = p.fetch(early, order_pos)?;
    let orderkey = p.bind("orders", "o_orderkey");
    let qualifying_orderkeys = p.fetch(orderkey, order_oids)?;

    // lineitem shipped after the cutoff, joined to the qualifying orders.
    let shipdate = p.bind("lineitem", "l_shipdate");
    let late = p.select_range_i32(shipdate, cutoff + 1, i32::MAX, None)?;
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let late_orderkeys = p.fetch(l_orderkey, late)?;
    let (line_pos, order_match) = p.pkfk_join(late_orderkeys, qualifying_orderkeys)?;
    let line_oids = p.fetch(late, line_pos)?;
    let line_orders = p.fetch(order_oids, order_match)?;

    // revenue = sum(l_extendedprice * (1 - l_discount)) per group.
    let price = p.bind("lineitem", "l_extendedprice");
    let price_sel = p.fetch(price, line_oids)?;
    let discount = p.bind("lineitem", "l_discount");
    let discount_sel = p.fetch(discount, line_oids)?;
    let one_minus = p.const_minus_f32(1.0, discount_sel)?;
    let revenue = p.mul_f32(price_sel, one_minus)?;

    // Group by (l_orderkey, o_orderdate, o_shippriority).
    let key_orderkey = p.fetch(l_orderkey, line_oids)?;
    let key_orderdate = p.fetch(orderdate, line_orders)?;
    let shippriority = p.bind("orders", "o_shippriority");
    let key_priority = p.fetch(shippriority, line_orders)?;
    let group = p.group_by(&[key_orderkey, key_orderdate, key_priority])?;
    let revenue_per_group = p.grouped_sum_f32(revenue, group)?;
    let reps = p.group_reps(group)?;
    let out_orderkey = p.fetch(key_orderkey, reps)?;
    let out_orderdate = p.fetch(key_orderdate, reps)?;
    let out_priority = p.fetch(key_priority, reps)?;

    // ORDER BY revenue DESC, materialised through the sort permutation.
    let order = p.sort_order_f32(revenue_per_group, true)?;
    let sorted_orderkey = p.fetch(out_orderkey, order)?;
    let sorted_revenue = p.fetch(revenue_per_group, order)?;
    let sorted_orderdate = p.fetch(out_orderdate, order)?;
    let sorted_priority = p.fetch(out_priority, order)?;
    p.result(&[sorted_orderkey, sorted_revenue, sorted_orderdate, sorted_priority])?;
    Ok(p.finish())
}

// ===========================================================================
// Q4 — order priority checking
// ===========================================================================

/// Q4 through the query DSL: `EXISTS` as a semi join against the lagging
/// lineitems; the `l_commitdate < l_receiptdate` column comparison lowers
/// to the cast + delta + positivity selection.
pub fn q4_query(db: &TpchDb) -> Query {
    let _ = db; // Q4's literals are scale-independent.
    let lo = date_to_days(1993, 7, 1);
    let hi = date_to_days(1993, 10, 1) - 1;
    Query::scan("orders")
        .filter(col("o_orderdate").between(lo, hi))
        .semi_join(
            Query::scan("lineitem").filter(col("l_commitdate").lt(col("l_receiptdate"))),
            "o_orderkey",
            "l_orderkey",
        )
        .group_by(&["o_orderpriority"], &[AggSpec::count("order_count")])
        .sort_by("o_orderpriority", false)
}

fn shape_q4(values: Vec<QueryValue>) -> Result<QueryResult, QueryError> {
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 4 })?;
    Ok(result_of(4, &["o_orderpriority", "order_count"], rows, 1))
}

fn q4<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    shape_q4(q4_query(db).run(session, db.catalog())?)
}

/// The hand-built physical plan of Q4 — the DSL port's oracle.
///
/// The date comparison `l_commitdate < l_receiptdate` is evaluated as a
/// float subtraction plus a positivity selection (day-number deltas are
/// small integers, exact in `f32`), so the whole plan stays on the
/// existing operator set.
pub fn q4_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let _ = db; // Q4's literals are scale-independent.
    let lo = date_to_days(1993, 7, 1);
    let hi = date_to_days(1993, 10, 1) - 1;
    let mut p = PlanBuilder::new();

    // lineitems received after their commit date.
    let commit = p.bind("lineitem", "l_commitdate");
    let receipt = p.bind("lineitem", "l_receiptdate");
    let commit_f = p.cast_i32_f32(commit)?;
    let receipt_f = p.cast_i32_f32(receipt)?;
    let lag = p.sub_f32(receipt_f, commit_f)?;
    let lagging = p.select_range_f32(lag, 0.5, f32::MAX, None)?;
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let lagging_orderkeys = p.fetch(l_orderkey, lagging)?;

    // orders of the quarter, restricted to those with a lagging lineitem.
    let orderdate = p.bind("orders", "o_orderdate");
    let window = p.select_range_i32(orderdate, lo, hi, None)?;
    let o_orderkey = p.bind("orders", "o_orderkey");
    let window_keys = p.fetch(o_orderkey, window)?;
    let matching = p.semi_join(window_keys, lagging_orderkeys)?;
    let order_oids = p.fetch(window, matching)?;

    // count(*) per priority, ordered by priority code.
    let priority = p.bind("orders", "o_orderpriority");
    let prio = p.fetch(priority, order_oids)?;
    let group = p.group_by(&[prio])?;
    let counts = p.grouped_count(group)?;
    let reps = p.group_reps(group)?;
    let keys = p.fetch(prio, reps)?;
    let order = p.sort_order_i32(keys, false)?;
    let sorted_keys = p.fetch(keys, order)?;
    let sorted_counts = p.fetch(counts, order)?;
    p.result(&[sorted_keys, sorted_counts])?;
    Ok(p.finish())
}

// ===========================================================================
// Q5 — local supplier volume
// ===========================================================================

/// Q5 through the query DSL: the six-table join of the workload. The
/// `c_nationkey = s_nationkey` "local supplier" condition spans two join
/// sides, so it survives pushdown and lowers as a positional delta
/// selection over the joined relation — exactly the kind of physical
/// decision the engine now owns.
pub fn q5_query(db: &TpchDb) -> Query {
    let asia = db.code("region", "r_name", "ASIA");
    let lo = date_to_days(1994, 1, 1);
    let hi = date_to_days(1995, 1, 1) - 1;
    Query::scan("lineitem")
        .join(Query::scan("orders"), "l_orderkey", "o_orderkey")
        .join(Query::scan("supplier"), "l_suppkey", "s_suppkey")
        .join(Query::scan("nation"), "s_nationkey", "n_nationkey")
        .join(Query::scan("region"), "n_regionkey", "r_regionkey")
        .join(Query::scan("customer"), "o_custkey", "c_custkey")
        .filter(col("r_name").eq(asia))
        .filter(col("o_orderdate").between(lo, hi))
        .filter(col("c_nationkey").eq(col("s_nationkey")))
        .map("revenue", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .group_by(&["n_name"], &[AggSpec::sum("revenue", "revenue")])
        .sort_by("revenue", true)
        .select(&["n_name", "revenue"])
}

fn q5<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let values = q5_query(db).run(session, db.catalog())?;
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 5 })?;
    Ok(result_of(5, &["n_name", "revenue"], rows, 1))
}

// ===========================================================================
// Q6 — forecasting revenue change
// ===========================================================================

/// Q6 through the query DSL: three selections, one computed column, one
/// deferred scalar sum. The lowering orders the selections by estimated
/// selectivity and chains them through candidate lists; on the Ocelot
/// backends the whole plan still flushes exactly once, at the scalar
/// readback (the PR 2/3 invariant, preserved through the DSL).
pub fn q6_query(db: &TpchDb) -> Query {
    let _ = db; // Q6's literals are scale-independent.
    Query::scan("lineitem")
        .filter(col("l_shipdate").between(date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1))
        .filter(col("l_discount").between(0.05f32 - 0.001, 0.07f32 + 0.001))
        .filter(col("l_quantity").le(23.5f32))
        .map("product", col("l_extendedprice") * col("l_discount"))
        .aggregate(&[AggSpec::sum("product", "revenue")])
}

/// Q6 as a prepared shape: the shipdate window is `$0..$1`, the discount
/// band is `$2..$3` (callers pass the *pre-adjusted* ±0.001 bounds
/// directly) and the quantity cutoff is `$4`. Bind with [`q6_params`] to
/// reproduce [`q6_query`] exactly.
pub fn q6_query_p(db: &TpchDb) -> Query {
    let _ = db; // Q6's shape is scale-independent.
    Query::scan("lineitem")
        .filter(col("l_shipdate").between(param(0), param(1)))
        .filter(col("l_discount").between(param(2), param(3)))
        .filter(col("l_quantity").le(param(4)))
        .map("product", col("l_extendedprice") * col("l_discount"))
        .aggregate(&[AggSpec::sum("product", "revenue")])
}

/// The workload's standard binding for [`q6_query_p`]: the 1994 shipdate
/// year, the widened `0.05..0.07 ± 0.001` discount band and the `23.5`
/// quantity cutoff of [`q6_query`].
pub fn q6_params() -> Vec<ParamValue> {
    vec![
        date_to_days(1994, 1, 1).into(),
        (date_to_days(1995, 1, 1) - 1).into(),
        (0.05f32 - 0.001).into(),
        (0.07f32 + 0.001).into(),
        23.5f32.into(),
    ]
}

fn shape_q6(values: Vec<QueryValue>) -> Result<QueryResult, QueryError> {
    let [QueryValue::Scalar(revenue)] = values.as_slice() else {
        return Err(QueryError::MalformedResult { query: 6 });
    };
    Ok(QueryResult {
        query: 6,
        columns: vec!["revenue".to_string()],
        rows: vec![vec![*revenue as f64]],
    })
}

fn q6<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    shape_q6(q6_query(db).run(session, db.catalog())?)
}

/// The hand-built physical plan of Q6 — the DSL port's oracle: three
/// chained selections, two fetches, a multiply and one deferred scalar sum.
///
/// On the Ocelot backends every node only enqueues device work; the single
/// queue flush happens when the result node reads the one-word revenue
/// scalar back — the PR 2 bound, now held per plan under the scheduler.
pub fn q6_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let _ = db; // Q6's literals are scale-independent; the db fixes no codes.
    let mut p = PlanBuilder::new();
    let shipdate = p.bind("lineitem", "l_shipdate");
    let in_year =
        p.select_range_i32(shipdate, date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1, None)?;
    let discount = p.bind("lineitem", "l_discount");
    let in_discount = p.select_range_f32(discount, 0.05 - 0.001, 0.07 + 0.001, Some(in_year))?;
    let quantity = p.bind("lineitem", "l_quantity");
    let qualifying = p.select_range_f32(quantity, f32::MIN, 23.5, Some(in_discount))?;
    let price = p.bind("lineitem", "l_extendedprice");
    let price_sel = p.fetch(price, qualifying)?;
    let discount_sel = p.fetch(discount, qualifying)?;
    let product = p.mul_f32(price_sel, discount_sel)?;
    let revenue = p.sum_f32(product)?;
    p.result(&[revenue])?;
    Ok(p.finish())
}

// ===========================================================================
// Q10 — returned item reporting
// ===========================================================================

/// Q10 through the query DSL: returned lineitems of one quarter joined
/// through orders into customer and nation, revenue per customer. The
/// schema has no `c_name`/address columns, so the report carries
/// `c_acctbal` and `n_name` (via `FIRST`, functionally dependent on the
/// customer key).
pub fn q10_query(db: &TpchDb) -> Query {
    let returned = db.code("lineitem", "l_returnflag", "R");
    let lo = date_to_days(1993, 10, 1);
    let hi = date_to_days(1994, 1, 1) - 1;
    Query::scan("lineitem")
        .join(Query::scan("orders"), "l_orderkey", "o_orderkey")
        .join(Query::scan("customer"), "o_custkey", "c_custkey")
        .join(Query::scan("nation"), "c_nationkey", "n_nationkey")
        .filter(col("l_returnflag").eq(returned))
        .filter(col("o_orderdate").between(lo, hi))
        .map("revenue", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .group_by(
            &["c_custkey"],
            &[
                AggSpec::sum("revenue", "revenue"),
                AggSpec::first("c_acctbal"),
                AggSpec::first("n_name"),
            ],
        )
        .sort_by("revenue", true)
        .select(&["c_custkey", "revenue", "c_acctbal", "n_name"])
}

fn q10<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let values = q10_query(db).run(session, db.catalog())?;
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 10 })?;
    Ok(result_of(10, &["c_custkey", "revenue", "c_acctbal", "n_name"], rows, 1))
}

// ===========================================================================
// Q12 — shipping modes and order priority
// ===========================================================================

/// Q12 through the query DSL, as two counting queries over the same
/// qualifying lineitems: all joined lines per ship mode, and the
/// high-priority subset (the priority `IN` filter pushes down into the
/// orders scan). The host derives `low = all - high` per mode — there is
/// no conditional-count operator, and two groupings keep both plans on the
/// shared operator set.
pub fn q12_queries(db: &TpchDb) -> (Query, Query) {
    let lo = date_to_days(1994, 1, 1);
    let hi = date_to_days(1995, 1, 1) - 1;
    let mail = db.code("lineitem", "l_shipmode", "MAIL");
    let ship = db.code("lineitem", "l_shipmode", "SHIP");
    let urgent = db.code("orders", "o_orderpriority", "1-URGENT");
    let high = db.code("orders", "o_orderpriority", "2-HIGH");
    let base = || {
        Query::scan("lineitem")
            .join(Query::scan("orders"), "l_orderkey", "o_orderkey")
            .filter(col("l_receiptdate").between(lo, hi))
            .filter(col("l_shipmode").in_list(&[mail, ship]))
            .filter(col("l_commitdate").lt(col("l_receiptdate")))
            .filter(col("l_shipdate").lt(col("l_commitdate")))
    };
    let all = base().group_by(&["l_shipmode"], &[AggSpec::count("count")]);
    let high_priority = base()
        .filter(col("o_orderpriority").in_list(&[urgent, high]))
        .group_by(&["l_shipmode"], &[AggSpec::count("count")]);
    (all, high_priority)
}

fn shape_q12(
    all_keys: Vec<f64>,
    all_counts: Vec<f64>,
    high_keys: Vec<f64>,
    high_counts: Vec<f64>,
) -> QueryResult {
    let rows: Vec<Vec<f64>> = all_keys
        .iter()
        .zip(&all_counts)
        .map(|(mode, total)| {
            let high =
                high_keys.iter().position(|k| k == mode).map(|at| high_counts[at]).unwrap_or(0.0);
            vec![*mode, high, total - high]
        })
        .collect();
    let mut result = QueryResult {
        query: 12,
        columns: ["l_shipmode", "high_line_count", "low_line_count"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    };
    sort_rows(&mut result.rows, 1);
    result
}

fn q12<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let (all, high) = q12_queries(db);
    let all_values = all.run(session, db.catalog())?;
    let high_values = high.run(session, db.catalog())?;
    let ([keys, counts], [hkeys, hcounts]) = (all_values.as_slice(), high_values.as_slice()) else {
        return Err(QueryError::MalformedResult { query: 12 });
    };
    Ok(shape_q12(floats(keys), floats(counts), floats(hkeys), floats(hcounts)))
}

/// The hand-built physical plan of Q12 — the DSL port's oracle: both
/// groupings in one DAG (all joined lines / the high-priority subset).
pub fn q12_plan(db: &TpchDb) -> Result<Plan, PlanError> {
    let lo = date_to_days(1994, 1, 1);
    let hi = date_to_days(1995, 1, 1) - 1;
    let mail = db.code("lineitem", "l_shipmode", "MAIL");
    let ship = db.code("lineitem", "l_shipmode", "SHIP");
    let urgent = db.code("orders", "o_orderpriority", "1-URGENT");
    let high = db.code("orders", "o_orderpriority", "2-HIGH");
    let mut p = PlanBuilder::new();

    // Receipt year and the two ship modes (IN via candidate union).
    let receipt = p.bind("lineitem", "l_receiptdate");
    let in_year = p.select_range_i32(receipt, lo, hi, None)?;
    let shipmode = p.bind("lineitem", "l_shipmode");
    let mail_sel = p.select_eq_i32(shipmode, mail, Some(in_year))?;
    let ship_sel = p.select_eq_i32(shipmode, ship, Some(in_year))?;
    let by_mode = p.union_oids(mail_sel, ship_sel)?;

    // l_commitdate < l_receiptdate and l_shipdate < l_commitdate.
    let commit = p.bind("lineitem", "l_commitdate");
    let commit_f = p.cast_i32_f32(commit)?;
    let receipt_f = p.cast_i32_f32(receipt)?;
    let commit_lag = p.sub_f32(receipt_f, commit_f)?;
    let commit_ok = p.select_range_f32(commit_lag, 0.5, f32::MAX, Some(by_mode))?;
    let shipdate = p.bind("lineitem", "l_shipdate");
    let ship_f = p.cast_i32_f32(shipdate)?;
    let ship_lag = p.sub_f32(commit_f, ship_f)?;
    let qualifying = p.select_range_f32(ship_lag, 0.5, f32::MAX, Some(commit_ok))?;

    // Join the qualifying lineitems to their orders.
    let l_orderkey = p.bind("lineitem", "l_orderkey");
    let line_keys = p.fetch(l_orderkey, qualifying)?;
    let o_orderkey = p.bind("orders", "o_orderkey");
    let (line_pos, order_oids) = p.pkfk_join(line_keys, o_orderkey)?;
    let line_oids = p.fetch(qualifying, line_pos)?;
    let mode_per_line = p.fetch(shipmode, line_oids)?;
    let priority = p.bind("orders", "o_orderpriority");
    let prio_per_line = p.fetch(priority, order_oids)?;

    // Counts per ship mode over all joined lines and over the
    // high-priority subset.
    let is_urgent = p.select_eq_i32(prio_per_line, urgent, None)?;
    let is_high = p.select_eq_i32(prio_per_line, high, None)?;
    let high_pos = p.union_oids(is_urgent, is_high)?;
    let mode_high = p.fetch(mode_per_line, high_pos)?;

    let all_group = p.group_by(&[mode_per_line])?;
    let all_counts = p.grouped_count(all_group)?;
    let all_reps = p.group_reps(all_group)?;
    let all_keys = p.fetch(mode_per_line, all_reps)?;
    let high_group = p.group_by(&[mode_high])?;
    let high_counts = p.grouped_count(high_group)?;
    let high_reps = p.group_reps(high_group)?;
    let high_keys = p.fetch(mode_high, high_reps)?;
    p.result(&[all_keys, all_counts, high_keys, high_counts])?;
    Ok(p.finish())
}

// ===========================================================================
// Q14 — promotion effect
// ===========================================================================

/// Q14 through the query DSL: one month of lineitem joined to part,
/// revenue summed per part type; the host derives the promo share from the
/// per-type rows (the dictionary turns `LIKE 'PROMO%'` into a code set).
pub fn q14_query(db: &TpchDb) -> Query {
    let _ = db; // Q14's literals are scale-independent.
    let lo = date_to_days(1995, 9, 1);
    let hi = date_to_days(1995, 10, 1) - 1;
    Query::scan("lineitem")
        .filter(col("l_shipdate").between(lo, hi))
        .join(Query::scan("part"), "l_partkey", "p_partkey")
        .map("revenue", col("l_extendedprice") * (lit(1.0f32) - col("l_discount")))
        .group_by(&["p_type"], &[AggSpec::sum("revenue", "revenue")])
}

/// The dictionary codes of part types starting with `PROMO`.
pub fn promo_type_codes(db: &TpchDb) -> Vec<i32> {
    let Some(dict) = db.catalog().dictionary("part", "p_type") else {
        return Vec::new();
    };
    (0..dict.len() as i32)
        .filter(|c| dict.decode(*c).is_some_and(|s| s.starts_with("PROMO")))
        .collect()
}

fn q14<B: Backend>(session: &Session<B>, db: &TpchDb) -> Result<QueryResult, QueryError> {
    let values = q14_query(db).run(session, db.catalog())?;
    let rows = rows_from(&values).ok_or(QueryError::MalformedResult { query: 14 })?;
    let promo = promo_type_codes(db);
    let promo_revenue: f64 =
        rows.iter().filter(|r| promo.contains(&(r[0] as i32))).map(|r| r[1]).sum();
    let total_revenue: f64 = rows.iter().map(|r| r[1]).sum();
    let share = if total_revenue == 0.0 { 0.0 } else { 100.0 * promo_revenue / total_revenue };
    Ok(QueryResult {
        query: 14,
        columns: vec!["promo_revenue".to_string()],
        rows: vec![vec![share]],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::TpchConfig;
    use ocelot_engine::{OcelotBackend, Session};

    fn db() -> TpchDb {
        TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 11 })
    }

    #[test]
    fn ported_queries_agree_across_all_configurations() {
        let db = db();
        let ms = Session::monet_seq();
        let mp = Session::monet_par();
        let ocelot_cpu = Session::new(OcelotBackend::cpu());
        let ocelot_gpu = Session::new(OcelotBackend::gpu());
        for query in PORTED_QUERY_IDS {
            let reference = run_query(&ms, &db, query).unwrap();
            assert!(!reference.rows.is_empty(), "q{query}: reference result empty");
            for (name, result) in [
                ("MP", run_query(&mp, &db, query).unwrap()),
                ("Ocelot CPU", run_query(&ocelot_cpu, &db, query).unwrap()),
                ("Ocelot GPU", run_query(&ocelot_gpu, &db, query).unwrap()),
            ] {
                assert!(
                    result.approx_eq(&reference, 1e-3),
                    "q{query} on {name} diverged:\n{result:?}\nvs reference\n{reference:?}"
                );
            }
        }
    }

    #[test]
    fn dsl_queries_match_their_hand_built_oracles() {
        // The tentpole's parity claim, at the unit level: for every query
        // with a hand-built physical oracle, the DSL-lowered plan must
        // reproduce its result (same backend, so the tolerance only covers
        // aggregation-order effects).
        let db = db();
        let ms = Session::monet_seq();
        for query in REFERENCE_QUERY_IDS {
            let oracle = run_query_reference(&ms, &db, query).unwrap();
            let dsl = run_query(&ms, &db, query).unwrap();
            assert!(
                dsl.approx_eq(&oracle, 1e-6),
                "q{query}: DSL result diverged from the hand-built oracle:\n{dsl:?}\nvs\n{oracle:?}"
            );
        }
    }

    #[test]
    fn q3_dsl_lowering_exercises_the_dag_path() {
        let db = db();
        let plan = q3_query(&db).lower(db.catalog()).unwrap();
        // The lowered DAG contains the multi-operator nodes the port is
        // about — chosen by the lowerer, not the query author.
        use ocelot_engine::PlanOp;
        let ops: Vec<&str> = plan.nodes().iter().map(|n| n.op.name()).collect();
        for expected in ["select_eq_i32", "pkfk_join", "group_by", "sort_order_f32"] {
            assert!(ops.contains(&expected), "q3 plan lacks {expected}: {ops:?}");
        }
        assert_eq!(
            plan.nodes().iter().filter(|n| matches!(n.op, PlanOp::PkFkJoin)).count(),
            2,
            "customer→orders and orders→lineitem joins"
        );
        // Q3 keeps a reasonable result set at this scale.
        let result = run_query(&Session::monet_seq(), &db, 3).unwrap();
        assert!(result.rows.len() > 5, "suspiciously few rows: {}", result.rows.len());
        // Revenue positive, dates before nothing (sanity).
        assert!(result.rows.iter().all(|r| r[1] > 0.0));
    }

    #[test]
    fn q6_flushes_exactly_once_on_ocelot() {
        // The paper's lazy-evaluation claim, end to end through the DSL:
        // the lowered plan (three chained candidate selections, two
        // fetches, a multiply and a sum) reaches the device in a single
        // flush at the final readback — the PR 2/3 invariant survives the
        // query-algebra layer.
        let db = db();
        for backend in [OcelotBackend::cpu(), OcelotBackend::cpu_sequential(), OcelotBackend::gpu()]
        {
            let session = Session::new(backend);
            let before = session.backend().context().queue().flush_count();
            let result = run_query(&session, &db, 6).unwrap();
            assert!(!result.rows.is_empty());
            assert_eq!(
                session.backend().context().queue().flush_count(),
                before + 1,
                "{}: q6 must sync exactly once",
                session.name()
            );
        }
    }

    #[test]
    fn q4_counts_only_orders_with_lagging_lineitems() {
        // Host-side oracle: re-derive Q4 directly from the generated data.
        let db = db();
        let commit = db.col("lineitem", "l_commitdate").as_i32().unwrap();
        let receipt = db.col("lineitem", "l_receiptdate").as_i32().unwrap();
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let lagging: std::collections::HashSet<i32> = l_orderkey
            .iter()
            .zip(commit.iter().zip(receipt))
            .filter(|(_, (c, r))| c < r)
            .map(|(k, _)| *k)
            .collect();
        let orderdate = db.col("orders", "o_orderdate").as_i32().unwrap();
        let priority = db.col("orders", "o_orderpriority").as_i32().unwrap();
        let (lo, hi) = (date_to_days(1993, 7, 1), date_to_days(1993, 10, 1) - 1);
        let mut expected: std::collections::HashMap<i32, f64> = std::collections::HashMap::new();
        for (order, (&date, &prio)) in orderdate.iter().zip(priority).enumerate() {
            if date >= lo && date <= hi && lagging.contains(&(order as i32)) {
                *expected.entry(prio).or_default() += 1.0;
            }
        }
        let result = run_query(&Session::monet_seq(), &db, 4).unwrap();
        assert!(!result.rows.is_empty());
        assert_eq!(result.rows.len(), expected.len());
        for row in &result.rows {
            assert_eq!(expected.get(&(row[0] as i32)), Some(&row[1]), "priority {}", row[0]);
        }
    }

    #[test]
    fn q5_sums_revenue_of_local_suppliers_only() {
        // Host-side oracle: re-derive Q5 directly from the generated data.
        let db = db();
        let asia_nations: std::collections::HashSet<i32> = {
            let region_name = db.col("region", "r_name").as_i32().unwrap();
            let asia = db.code("region", "r_name", "ASIA");
            let asia_region = region_name.iter().position(|r| *r == asia).unwrap() as i32;
            db.col("nation", "n_regionkey")
                .as_i32()
                .unwrap()
                .iter()
                .enumerate()
                .filter(|(_, r)| **r == asia_region)
                .map(|(n, _)| n as i32)
                .collect()
        };
        let n_name = db.col("nation", "n_name").as_i32().unwrap();
        let o_custkey = db.col("orders", "o_custkey").as_i32().unwrap();
        let o_orderdate = db.col("orders", "o_orderdate").as_i32().unwrap();
        let c_nationkey = db.col("customer", "c_nationkey").as_i32().unwrap();
        let s_nationkey = db.col("supplier", "s_nationkey").as_i32().unwrap();
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let l_suppkey = db.col("lineitem", "l_suppkey").as_i32().unwrap();
        let price = db.col("lineitem", "l_extendedprice").as_f32().unwrap();
        let discount = db.col("lineitem", "l_discount").as_f32().unwrap();
        let (lo, hi) = (date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1);
        let mut expected: std::collections::HashMap<i32, f64> = std::collections::HashMap::new();
        for i in 0..l_orderkey.len() {
            let order = l_orderkey[i] as usize;
            let supp_nation = s_nationkey[l_suppkey[i] as usize];
            let cust_nation = c_nationkey[o_custkey[order] as usize];
            if o_orderdate[order] >= lo
                && o_orderdate[order] <= hi
                && asia_nations.contains(&supp_nation)
                && cust_nation == supp_nation
            {
                *expected.entry(n_name[supp_nation as usize]).or_default() +=
                    (price[i] * (1.0 - discount[i])) as f64;
            }
        }
        let result = run_query(&Session::monet_seq(), &db, 5).unwrap();
        assert_eq!(result.rows.len(), expected.len(), "{result:?}\nvs {expected:?}");
        for row in &result.rows {
            let want = expected[&(row[0] as i32)];
            assert!(
                (row[1] - want).abs() / want.abs().max(1.0) < 1e-3,
                "nation {}: {} vs {want}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn q10_ranks_customers_by_returned_revenue() {
        // Host-side oracle: per-customer revenue over returned lineitems
        // of the quarter, with the carried acctbal / nation columns.
        let db = db();
        let returned = db.code("lineitem", "l_returnflag", "R");
        let (lo, hi) = (date_to_days(1993, 10, 1), date_to_days(1994, 1, 1) - 1);
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let l_returnflag = db.col("lineitem", "l_returnflag").as_i32().unwrap();
        let price = db.col("lineitem", "l_extendedprice").as_f32().unwrap();
        let discount = db.col("lineitem", "l_discount").as_f32().unwrap();
        let o_custkey = db.col("orders", "o_custkey").as_i32().unwrap();
        let o_orderdate = db.col("orders", "o_orderdate").as_i32().unwrap();
        let c_acctbal = db.col("customer", "c_acctbal").as_f32().unwrap();
        let c_nationkey = db.col("customer", "c_nationkey").as_i32().unwrap();
        let n_name = db.col("nation", "n_name").as_i32().unwrap();
        let mut expected: std::collections::HashMap<i32, f64> = std::collections::HashMap::new();
        for i in 0..l_orderkey.len() {
            let order = l_orderkey[i] as usize;
            if l_returnflag[i] == returned && o_orderdate[order] >= lo && o_orderdate[order] <= hi {
                *expected.entry(o_custkey[order]).or_default() +=
                    (price[i] * (1.0 - discount[i])) as f64;
            }
        }
        let result = run_query(&Session::monet_seq(), &db, 10).unwrap();
        assert!(!result.rows.is_empty());
        assert_eq!(result.rows.len(), expected.len());
        for row in &result.rows {
            let customer = row[0] as i32;
            let want = expected[&customer];
            assert!((row[1] - want).abs() / want.abs().max(1.0) < 1e-3, "customer {customer}");
            assert!((row[2] - c_acctbal[customer as usize] as f64).abs() < 1e-2);
            assert_eq!(row[3] as i32, n_name[c_nationkey[customer as usize] as usize]);
        }
    }

    #[test]
    fn q12_splits_counts_by_priority() {
        let db = db();
        let result = run_query(&Session::monet_seq(), &db, 12).unwrap();
        assert!(!result.rows.is_empty());
        assert!(result.rows.len() <= 2, "only MAIL and SHIP qualify");
        // Host-side oracle for the per-mode totals and the high/low split.
        let (lo, hi) = (date_to_days(1994, 1, 1), date_to_days(1995, 1, 1) - 1);
        let mode = db.col("lineitem", "l_shipmode").as_i32().unwrap();
        let shipd = db.col("lineitem", "l_shipdate").as_i32().unwrap();
        let commit = db.col("lineitem", "l_commitdate").as_i32().unwrap();
        let receipt = db.col("lineitem", "l_receiptdate").as_i32().unwrap();
        let l_orderkey = db.col("lineitem", "l_orderkey").as_i32().unwrap();
        let priority = db.col("orders", "o_orderpriority").as_i32().unwrap();
        let mail = db.code("lineitem", "l_shipmode", "MAIL");
        let ship = db.code("lineitem", "l_shipmode", "SHIP");
        let urgent = db.code("orders", "o_orderpriority", "1-URGENT");
        let high = db.code("orders", "o_orderpriority", "2-HIGH");
        let mut expected: std::collections::HashMap<i32, (f64, f64)> =
            std::collections::HashMap::new();
        for i in 0..mode.len() {
            let qualifies = (mode[i] == mail || mode[i] == ship)
                && receipt[i] >= lo
                && receipt[i] <= hi
                && commit[i] < receipt[i]
                && shipd[i] < commit[i];
            if qualifies {
                let prio = priority[l_orderkey[i] as usize];
                let entry = expected.entry(mode[i]).or_default();
                if prio == urgent || prio == high {
                    entry.0 += 1.0;
                } else {
                    entry.1 += 1.0;
                }
            }
        }
        assert_eq!(result.rows.len(), expected.len());
        for row in &result.rows {
            let (high_count, low_count) = expected[&(row[0] as i32)];
            assert_eq!((row[1], row[2]), (high_count, low_count), "mode {}", row[0]);
        }
    }

    #[test]
    fn q14_reports_the_promo_revenue_share() {
        // Host-side oracle: the promo share over the September 1995 window.
        let db = db();
        let promo = promo_type_codes(&db);
        assert!(!promo.is_empty(), "the generator has a PROMO part type");
        let (lo, hi) = (date_to_days(1995, 9, 1), date_to_days(1995, 10, 1) - 1);
        let l_partkey = db.col("lineitem", "l_partkey").as_i32().unwrap();
        let l_shipdate = db.col("lineitem", "l_shipdate").as_i32().unwrap();
        let price = db.col("lineitem", "l_extendedprice").as_f32().unwrap();
        let discount = db.col("lineitem", "l_discount").as_f32().unwrap();
        let p_type = db.col("part", "p_type").as_i32().unwrap();
        let (mut promo_rev, mut total) = (0.0f64, 0.0f64);
        for i in 0..l_partkey.len() {
            if l_shipdate[i] >= lo && l_shipdate[i] <= hi {
                let revenue = (price[i] * (1.0 - discount[i])) as f64;
                total += revenue;
                if promo.contains(&p_type[l_partkey[i] as usize]) {
                    promo_rev += revenue;
                }
            }
        }
        assert!(total > 0.0, "September 1995 must ship something at this scale");
        let expected = 100.0 * promo_rev / total;
        let result = run_query(&Session::monet_seq(), &db, 14).unwrap();
        assert_eq!(result.rows.len(), 1);
        let got = result.rows[0][0];
        assert!((got - expected).abs() < 1e-2, "{got} vs {expected}");
    }

    #[test]
    fn unported_queries_report_structured_errors() {
        let db = db();
        let ms = Session::monet_seq();
        for query in QUERY_IDS {
            let result = run_query(&ms, &db, query);
            if PORTED_QUERY_IDS.contains(&query) {
                assert!(result.is_ok(), "q{query}: {:?}", result.err());
            } else {
                assert_eq!(
                    result.unwrap_err(),
                    QueryError::Unsupported { query },
                    "q{query} unexpectedly implemented"
                );
            }
        }
        let err = run_query(&ms, &db, 2).unwrap_err();
        assert_eq!(err, QueryError::NotInWorkload { query: 2 });
        assert!(err.to_string().contains("not part"));
    }

    #[test]
    fn explain_shows_the_rules_and_the_physical_plan() {
        // explain() is the layer's debugging surface: it must show the
        // logical tree, each rewrite rule's annotation and the lowered
        // physical nodes for a real query.
        let db = db();
        let text = q3_query(&db).explain(db.catalog()).unwrap();
        for needle in [
            "=== logical plan ===",
            "predicate pushdown",
            "projection pruning",
            "=== physical plan",
            "pkfk join",
            "bind lineitem.l_orderkey",
        ] {
            assert!(text.contains(needle), "q3 explain lacks `{needle}`:\n{text}");
        }
        // Selectivity ordering needs a multi-predicate chain over one scan
        // — Q6's three selections are the canonical case.
        let text = q6_query(&db).explain(db.catalog()).unwrap();
        for needle in ["selectivity order on lineitem", "ungrouped sum", "sum_f32"] {
            assert!(text.contains(needle), "q6 explain lacks `{needle}`:\n{text}");
        }
    }
}
