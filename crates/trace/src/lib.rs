//! # ocelot-trace — structured tracing and the unified metrics registry
//!
//! The engine's evidence used to be scattered across eight ad-hoc stats
//! structs with no per-query or per-node view. This crate is the shared
//! substrate that fixes that: a structured span/event layer every subsystem
//! emits into ([`TraceSink`] / [`TraceHandle`]), a Chrome trace-event
//! timeline export ([`TraceSink::to_chrome_trace`]) and one named-metric
//! surface ([`MetricsRegistry`]) the existing stats structs project into
//! without giving up their typed accessors.
//!
//! The crate sits *below* `ocelot-kernel` in the dependency order (it knows
//! nothing about devices, buffers or plans), which is what lets the kernel
//! queue, the core memory manager and the engine's plan executor all emit
//! into the same sink.
//!
//! # Event-emission contract
//!
//! Every subsystem that owns a [`TraceHandle`] must emit the events below
//! when a sink is attached and recording. Op-site tags (the `site` column)
//! reuse the `fault_preflight` site taxonomy of the kernel crate
//! (`"kernel launch"`, `"transfer"`, `"allocation"`), so a timeline and a
//! fault schedule name the same places.
//!
//! | Emitter                  | Event kind        | When                                          | Site           |
//! |--------------------------|-------------------|-----------------------------------------------|----------------|
//! | `Queue::flush`           | [`Kernel`]        | each kernel the flush executes                | `kernel launch`|
//! | `Queue::flush`           | [`Transfer`]      | each host↔device transfer executed            | `transfer`     |
//! | `Queue::flush`           | [`Flush`]         | each **non-empty** flush (mirrors `flush_count`) | —           |
//! | `Device::alloc_capped`   | [`Alloc`]         | each successful device allocation             | `allocation`   |
//! | `PlanRun::step`          | [`Node`]          | node start / complete / restart / retry       | —              |
//! | `ColumnCache::bind`      | [`CacheBind`]     | each bind, tagged hit or miss (upload)        | —              |
//! | `ColumnCache` eviction   | [`CacheEvict`]    | each entry dropped under pressure             | —              |
//! | `MemoryManager` offload  | [`Spill`]         | each intermediate offloaded to host staging   | —              |
//! | `MemoryManager` restore  | [`Unspill`]       | each staged intermediate restored             | —              |
//! | `PlanCache::plan`        | [`PlanCache`]     | each lookup, tagged hit or miss               | —              |
//! | `Scheduler` / `ServeScheduler` | [`Sched`]   | submit / admit / reject / complete / quarantine | —            |
//!
//! [`Kernel`]: TraceEventKind::Kernel
//! [`Transfer`]: TraceEventKind::Transfer
//! [`Flush`]: TraceEventKind::Flush
//! [`Alloc`]: TraceEventKind::Alloc
//! [`Node`]: TraceEventKind::Node
//! [`CacheBind`]: TraceEventKind::CacheBind
//! [`CacheEvict`]: TraceEventKind::CacheEvict
//! [`Spill`]: TraceEventKind::Spill
//! [`Unspill`]: TraceEventKind::Unspill
//! [`PlanCache`]: TraceEventKind::PlanCache
//! [`Sched`]: TraceEventKind::Sched
//!
//! # Overhead bar
//!
//! Tracing must be cheap when off — the same bar the fault layer met for
//! arming:
//!
//! * **Disabled** (no sink attached): one relaxed atomic load per emission
//!   site. The event payload is behind a closure and never constructed.
//! * **Armed but silent** (sink attached, [`TraceSink::set_recording`]
//!   false): the atomic load plus one short mutex acquisition per site.
//! * Both must cost **< 2 %** on the Q3/Q5/Q10 query stream, measured by
//!   `bench_pr9`.
//!
//! Emission sites are per *operation* (a kernel, a flush, a plan node),
//! never per row, which is what keeps the armed path off the data plane.
//!
//! # Metrics registry
//!
//! [`MetricsRegistry`] is a snapshot surface: subsystems *project* their
//! existing stats structs into named counters/gauges/histograms (e.g.
//! `ocelot.spill.spilled_bytes`, `ocelot.memory.bytes_offloaded`), so
//! cross-subsystem identities like `spilled_bytes == bytes_offloaded`
//! become registry assertions while every typed accessor keeps working.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Event taxonomy
// ---------------------------------------------------------------------------

/// Lifecycle stage of a plan-node event (see `PlanRun::step`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeAction {
    /// Node execution began.
    Start,
    /// Node execution finished successfully.
    Complete,
    /// The plan restarted from the top after the node hit device OOM.
    Restart,
    /// The node was retried in place after a transient fault.
    Retry,
}

impl NodeAction {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            NodeAction::Start => "start",
            NodeAction::Complete => "complete",
            NodeAction::Restart => "restart",
            NodeAction::Retry => "retry",
        }
    }
}

/// What a scheduler event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedAction {
    /// A job arrived at the scheduler.
    Submit,
    /// The job was admitted in flight (`detail` = in-flight count after).
    Admit,
    /// The job was rejected by backpressure (`detail` = backlog length).
    Reject,
    /// The job ran to completion (`detail` = completion index).
    Complete,
    /// The job failed permanently and was quarantined.
    Quarantine,
}

impl SchedAction {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedAction::Submit => "submit",
            SchedAction::Admit => "admit",
            SchedAction::Reject => "reject",
            SchedAction::Complete => "complete",
            SchedAction::Quarantine => "quarantine",
        }
    }
}

/// The typed payload of a [`TraceEvent`] — one variant per row of the
/// emission contract table in the module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A kernel launch executed by a queue flush.
    Kernel {
        /// Kernel name.
        kernel: String,
        /// Wall-clock execution time on the host.
        host_ns: u64,
        /// Modeled device time (equals `host_ns` on real CPU devices).
        modeled_ns: u64,
    },
    /// A host↔device transfer executed by a queue flush.
    Transfer {
        /// `true` for host→device writes, `false` for device→host reads.
        to_device: bool,
        /// Bytes moved (0 on unified-memory devices).
        bytes: u64,
        /// Modeled transfer time.
        modeled_ns: u64,
    },
    /// A successful device-memory allocation.
    Alloc {
        /// Buffer label.
        label: String,
        /// Bytes reserved.
        bytes: u64,
    },
    /// A non-empty queue flush (1:1 with `Queue::flush_count`).
    Flush {
        /// Kernels executed by this flush.
        kernels: u64,
        /// Transfers executed by this flush.
        transfers: u64,
        /// Host wall-clock time of the flush.
        host_ns: u64,
    },
    /// A plan-node lifecycle event.
    Node {
        /// Node index in the plan.
        pc: u64,
        /// Operator label (as in `Plan::explain`).
        op: String,
        /// Lifecycle stage.
        action: NodeAction,
        /// Rows produced (complete events only; 0 otherwise).
        rows: u64,
        /// Host wall-clock time attributed to the stage.
        host_ns: u64,
    },
    /// A column-cache bind.
    CacheBind {
        /// Served from a resident entry (no upload).
        hit: bool,
        /// Bytes of the bound column.
        bytes: u64,
    },
    /// A column-cache eviction under memory pressure.
    CacheEvict {
        /// Bytes released.
        bytes: u64,
    },
    /// An intermediate offloaded to host staging (partition spill).
    Spill {
        /// Bytes offloaded.
        bytes: u64,
    },
    /// A staged intermediate restored to the device.
    Unspill {
        /// Bytes restored.
        bytes: u64,
    },
    /// A compiled-plan cache lookup.
    PlanCache {
        /// Whether the shape was served from cache.
        hit: bool,
    },
    /// A scheduler admission/queue/lane event.
    Sched {
        /// Tenant id (0 for the single-tenant scheduler).
        tenant: u64,
        /// Job index within the run.
        job: u64,
        /// Lane name (`"interactive"`, `"batch"`, `"fifo"`).
        lane: &'static str,
        /// What happened.
        action: SchedAction,
        /// Action-specific detail (see [`SchedAction`]).
        detail: u64,
    },
}

impl TraceEventKind {
    /// Stable event name (the Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Kernel { .. } => "kernel",
            TraceEventKind::Transfer { .. } => "transfer",
            TraceEventKind::Alloc { .. } => "alloc",
            TraceEventKind::Flush { .. } => "flush",
            TraceEventKind::Node { .. } => "node",
            TraceEventKind::CacheBind { .. } => "cache_bind",
            TraceEventKind::CacheEvict { .. } => "cache_evict",
            TraceEventKind::Spill { .. } => "spill",
            TraceEventKind::Unspill { .. } => "unspill",
            TraceEventKind::PlanCache { .. } => "plan_cache",
            TraceEventKind::Sched { .. } => "sched",
        }
    }

    /// The emitting subsystem (the Chrome trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEventKind::Kernel { .. }
            | TraceEventKind::Transfer { .. }
            | TraceEventKind::Flush { .. } => "queue",
            TraceEventKind::Alloc { .. } => "device",
            TraceEventKind::Node { .. } => "plan",
            TraceEventKind::CacheBind { .. } | TraceEventKind::CacheEvict { .. } => "cache",
            TraceEventKind::Spill { .. } | TraceEventKind::Unspill { .. } => "memory",
            TraceEventKind::PlanCache { .. } => "serve",
            TraceEventKind::Sched { .. } => "sched",
        }
    }

    /// The op-site tag, for events that map onto the kernel fault-injection
    /// taxonomy (`FaultSite::name()` strings).
    pub fn site(&self) -> Option<&'static str> {
        match self {
            TraceEventKind::Kernel { .. } => Some("kernel launch"),
            TraceEventKind::Transfer { .. } => Some("transfer"),
            TraceEventKind::Alloc { .. } => Some("allocation"),
            _ => None,
        }
    }

    fn args_json(&self) -> String {
        match self {
            TraceEventKind::Kernel { kernel, host_ns, modeled_ns } => format!(
                "{{\"kernel\":{},\"host_ns\":{host_ns},\"modeled_ns\":{modeled_ns}}}",
                json_string(kernel)
            ),
            TraceEventKind::Transfer { to_device, bytes, modeled_ns } => format!(
                "{{\"dir\":\"{}\",\"bytes\":{bytes},\"modeled_ns\":{modeled_ns}}}",
                if *to_device { "to_device" } else { "from_device" }
            ),
            TraceEventKind::Alloc { label, bytes } => {
                format!("{{\"label\":{},\"bytes\":{bytes}}}", json_string(label))
            }
            TraceEventKind::Flush { kernels, transfers, host_ns } => {
                format!("{{\"kernels\":{kernels},\"transfers\":{transfers},\"host_ns\":{host_ns}}}")
            }
            TraceEventKind::Node { pc, op, action, rows, host_ns } => format!(
                "{{\"pc\":{pc},\"op\":{},\"action\":\"{}\",\"rows\":{rows},\"host_ns\":{host_ns}}}",
                json_string(op),
                action.name()
            ),
            TraceEventKind::CacheBind { hit, bytes } => {
                format!("{{\"hit\":{hit},\"bytes\":{bytes}}}")
            }
            TraceEventKind::CacheEvict { bytes } => format!("{{\"bytes\":{bytes}}}"),
            TraceEventKind::Spill { bytes } => format!("{{\"bytes\":{bytes}}}"),
            TraceEventKind::Unspill { bytes } => format!("{{\"bytes\":{bytes}}}"),
            TraceEventKind::PlanCache { hit } => format!("{{\"hit\":{hit}}}"),
            TraceEventKind::Sched { tenant, job, lane, action, detail } => format!(
                "{{\"tenant\":{tenant},\"job\":{job},\"lane\":\"{lane}\",\"action\":\"{}\",\"detail\":{detail}}}",
                action.name()
            ),
        }
    }
}

/// One recorded event: a typed payload plus timeline coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the sink's epoch.
    pub ts_ns: u64,
    /// Span duration (0 for instant events).
    pub dur_ns: u64,
    /// Timeline process row (tenant id for serve runs, 0 otherwise).
    pub pid: u64,
    /// Timeline thread row (job id for scheduler runs, 0 otherwise).
    pub tid: u64,
    /// The typed payload.
    pub kind: TraceEventKind,
}

// ---------------------------------------------------------------------------
// Sink and handle
// ---------------------------------------------------------------------------

/// An in-memory event recorder with a monotonic epoch.
///
/// One sink is shared (via `Arc`) by every subsystem participating in a
/// traced run — queue, device, memory manager, cache, plan executor,
/// scheduler — so their events land on one timeline. The sink is
/// deliberately *per run/session object*, not process-global: parallel
/// tests and tenants each get their own timeline.
pub struct TraceSink {
    epoch: Instant,
    recording: AtomicBool,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// A fresh, recording sink whose epoch is now.
    pub fn new() -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            recording: AtomicBool::new(true),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since this sink's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Toggles recording. An attached sink with recording off is the
    /// "armed but silent" state the overhead bar is measured against:
    /// emission sites still take their fast-path check, but no event is
    /// constructed or stored.
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently stored.
    pub fn is_recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Records an instant event stamped now on timeline row (0, 0).
    pub fn record(&self, kind: TraceEventKind) {
        self.record_event(TraceEvent { ts_ns: self.now_ns(), dur_ns: 0, pid: 0, tid: 0, kind });
    }

    /// Records a fully specified event (respects the recording gate).
    pub fn record_event(&self, event: TraceEvent) {
        if self.is_recording() {
            self.events.lock().push(event);
        }
    }

    /// Snapshot of every recorded event, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.lock().iter().filter(|e| pred(e)).count()
    }

    /// Drops every recorded event (the epoch is unchanged).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Renders the timeline as a Chrome trace-event JSON array (load it at
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Spans become `"X"`
    /// (complete) events, instants become `"i"` events; timestamps are in
    /// microseconds as the format requires.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 128 + 2);
        out.push('[');
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ph = if event.dur_ns > 0 { "X" } else { "i" };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{:.3}",
                event.kind.name(),
                event.kind.category(),
                event.ts_ns as f64 / 1_000.0
            ));
            if event.dur_ns > 0 {
                out.push_str(&format!(",\"dur\":{:.3}", event.dur_ns as f64 / 1_000.0));
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(
                ",\"pid\":{},\"tid\":{},\"args\":{}}}",
                event.pid,
                event.tid,
                event.kind.args_json()
            ));
        }
        out.push(']');
        out
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("events", &self.len())
            .field("recording", &self.is_recording())
            .finish()
    }
}

/// The attachment point a subsystem owns: a detachable reference to a
/// shared [`TraceSink`] with a relaxed-atomic armed flag in front.
///
/// The emission pattern is `handle.emit(|| TraceEventKind::...)`: when no
/// sink is attached the closure is never run, so a disabled handle costs
/// one relaxed atomic load — the same fast-path discipline the queue's
/// `profiling` flag established.
#[derive(Default)]
pub struct TraceHandle {
    armed: AtomicBool,
    sink: Mutex<Option<Arc<TraceSink>>>,
}

impl TraceHandle {
    /// A detached (disabled) handle.
    pub const fn new() -> TraceHandle {
        TraceHandle { armed: AtomicBool::new(false), sink: Mutex::new(None) }
    }

    /// Attaches a sink; subsequent emissions land in it.
    pub fn attach(&self, sink: Arc<TraceSink>) {
        *self.sink.lock() = Some(sink);
        self.armed.store(true, Ordering::Release);
    }

    /// Detaches the sink, returning the handle to the disabled state.
    pub fn detach(&self) {
        self.armed.store(false, Ordering::Release);
        *self.sink.lock() = None;
    }

    /// Whether a sink is attached (one relaxed load — the fast path).
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The attached sink, if any.
    pub fn sink(&self) -> Option<Arc<TraceSink>> {
        if !self.armed() {
            return None;
        }
        self.sink.lock().clone()
    }

    /// Emits an instant event on rows (0, 0). The payload closure only runs
    /// when a sink is attached *and* recording.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEventKind) {
        if !self.armed() {
            return;
        }
        self.emit_slow(make);
    }

    /// Emits a fully specified event (span coordinates under caller
    /// control). Same gating as [`TraceHandle::emit`].
    #[inline]
    pub fn emit_with(&self, make: impl FnOnce(&TraceSink) -> TraceEvent) {
        if !self.armed() {
            return;
        }
        if let Some(sink) = self.sink.lock().clone() {
            if sink.is_recording() {
                let event = make(&sink);
                sink.record_event(event);
            }
        }
    }

    #[cold]
    fn emit_slow(&self, make: impl FnOnce() -> TraceEventKind) {
        if let Some(sink) = self.sink.lock().clone() {
            if sink.is_recording() {
                sink.record(make());
            }
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle").field("armed", &self.armed()).finish()
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Summary histogram: count/sum/min/max of observed values (enough for the
/// latency and size distributions the engine reports, with no bucket-bound
/// policy to get wrong).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    /// Folds one observation in.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named-metric snapshot: counters, gauges and summary histograms keyed
/// by dotted names (`"ocelot.spill.spilled_bytes"`).
///
/// The registry is a *projection* surface, not a live aggregator:
/// subsystems fill one from their existing stats structs on demand
/// (`Session::metrics`, `Backend::register_metrics`), so the typed
/// accessors stay the source of truth and the registry gives tests and
/// tools one uniform place to cross-check them.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets (overwrites) a counter — the projection primitive for
    /// monotonically increasing stats fields.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds to a counter (creating it at 0), for emitters that report in
    /// increments.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets a gauge — a point-in-time level (resident bytes, queue depth).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Folds one observation into a named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// The value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's summary, if registered.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms.get(name).copied()
    }

    /// Iterates registered counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(name, value)| (name.as_str(), *value))
    }

    /// Iterates registered gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(name, value)| (name.as_str(), *value))
    }

    /// Total number of registered metrics across all three kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders a plain-text table of every metric, one per line, in name
    /// order within each kind.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter   {name} = {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} = count {} sum {} min {} max {}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_never_runs_the_payload_closure() {
        let handle = TraceHandle::new();
        let mut ran = false;
        handle.emit(|| {
            ran = true;
            TraceEventKind::PlanCache { hit: true }
        });
        assert!(!ran);
        assert!(!handle.armed());
    }

    #[test]
    fn armed_but_silent_skips_recording() {
        let handle = TraceHandle::new();
        let sink = Arc::new(TraceSink::new());
        sink.set_recording(false);
        handle.attach(Arc::clone(&sink));
        assert!(handle.armed());
        handle.emit(|| TraceEventKind::PlanCache { hit: false });
        assert!(sink.is_empty());
        sink.set_recording(true);
        handle.emit(|| TraceEventKind::PlanCache { hit: false });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn events_carry_taxonomy_and_sites() {
        let sink = TraceSink::new();
        sink.record(TraceEventKind::Kernel { kernel: "scan".into(), host_ns: 10, modeled_ns: 20 });
        sink.record(TraceEventKind::Alloc { label: "buf".into(), bytes: 4096 });
        sink.record(TraceEventKind::Spill { bytes: 64 });
        let events = sink.events();
        assert_eq!(events[0].kind.site(), Some("kernel launch"));
        assert_eq!(events[0].kind.category(), "queue");
        assert_eq!(events[1].kind.site(), Some("allocation"));
        assert_eq!(events[2].kind.site(), None);
        assert_eq!(events[2].kind.category(), "memory");
        assert_eq!(sink.count(|e| matches!(e.kind, TraceEventKind::Alloc { .. })), 1);
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants() {
        let sink = TraceSink::new();
        sink.record_event(TraceEvent {
            ts_ns: 1_500,
            dur_ns: 2_000,
            pid: 1,
            tid: 7,
            kind: TraceEventKind::Node {
                pc: 3,
                op: "pkfk_join".into(),
                action: NodeAction::Complete,
                rows: 42,
                host_ns: 2_000,
            },
        });
        sink.record_event(TraceEvent {
            ts_ns: 4_000,
            dur_ns: 0,
            pid: 0,
            tid: 0,
            kind: TraceEventKind::PlanCache { hit: true },
        });
        let json = sink.to_chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""), "span event: {json}");
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"ph\":\"i\""), "instant event: {json}");
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("pkfk_join"));
        // Exactly two top-level objects.
        assert_eq!(json.matches("\"name\":").count(), 2);
    }

    #[test]
    fn json_strings_are_escaped() {
        let escaped = json_string("a\"b\\c\nd");
        assert_eq!(escaped, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("ocelot.spill.spills", 3);
        reg.add_counter("ocelot.spill.spills", 2);
        reg.set_gauge("ocelot.cache.resident_bytes", 1024.0);
        reg.observe("ocelot.node.host_ns", 10);
        reg.observe("ocelot.node.host_ns", 30);
        assert_eq!(reg.counter("ocelot.spill.spills"), Some(5));
        assert_eq!(reg.gauge("ocelot.cache.resident_bytes"), Some(1024.0));
        let h = reg.histogram("ocelot.node.host_ns").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 40, 10, 30));
        assert_eq!(h.mean(), 20.0);
        assert_eq!(reg.len(), 3);
        let rendered = reg.render();
        assert!(rendered.contains("counter   ocelot.spill.spills = 5"));
        assert!(rendered.contains("histogram ocelot.node.host_ns"));
    }

    #[test]
    fn sink_clear_and_snapshot_isolation() {
        let sink = TraceSink::new();
        sink.record(TraceEventKind::CacheEvict { bytes: 1 });
        let snapshot = sink.events();
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(snapshot.len(), 1, "snapshots are decoupled from the sink");
    }
}
