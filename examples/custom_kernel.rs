//! Writing a custom kernel against the hardware-oblivious runtime.
//!
//! Run with `cargo run --release -p ocelot-examples --example custom_kernel`.
//!
//! The paper's pitch (§4) is that one kernel, written once against the
//! OpenCL-style programming model, runs unchanged on every device the
//! driver layer exposes. This example builds a two-kernel pipeline the way
//! `ocelot-core`'s operators are built:
//!
//! 1. `custom.mul` — a Listing-1-style map kernel producing
//!    `out[i] = a[i] * b[i]`.
//! 2. `custom.group_sum` — a two-phase reduction: each work-item folds its
//!    assigned slice into **group-local memory**, then the group reduces
//!    its local cells into one partial sum per work-group.
//!
//! The second kernel waits on the first through the event model, nothing
//! executes until the single `flush`, and the final dot product is
//! identical on the sequential CPU, the multicore CPU and the simulated
//! GPU — even though each device partitions the index space differently
//! (contiguous chunks vs strided interleaving): wrapping-add is
//! commutative, so the partition cannot show through.

use ocelot_kernel::{Buffer, Device, GpuConfig, Kernel, WorkGroupCtx};
use std::sync::Arc;

/// `out[i] = a[i] * b[i]` (wrapping): the map phase.
struct MulKernel {
    a: Buffer,
    b: Buffer,
    out: Buffer,
}

impl Kernel for MulKernel {
    fn name(&self) -> &str {
        "custom.mul"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                self.out.set_i32(idx, self.a.get_i32(idx).wrapping_mul(self.b.get_i32(idx)));
            }
        }
    }
}

/// `partials[group_id] = Σ input[i]` over the group's share, reduced
/// through group-local memory like an OpenCL two-phase reduction.
struct GroupSumKernel {
    input: Buffer,
    partials: Buffer,
}

impl Kernel for GroupSumKernel {
    fn name(&self) -> &str {
        "custom.group_sum"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for (slot, item) in group.items().enumerate() {
            let mut acc = 0i32;
            for idx in item.assigned() {
                acc = acc.wrapping_add(self.input.get_i32(idx));
            }
            group.local().set_i32(slot, acc);
        }
        group.barrier();
        let mut acc = 0i32;
        for slot in 0..group.group_size() {
            acc = acc.wrapping_add(group.local().get_i32(slot));
        }
        self.partials.set_i32(group.group_id(), acc);
    }
}

/// Runs the pipeline on one device and returns the dot product.
fn dot_on(device: &Device, a: &[i32], b: &[i32]) -> i32 {
    let n = a.len();
    let buf_a = device.alloc(n, "a").unwrap();
    let buf_b = device.alloc(n, "b").unwrap();
    let out = device.alloc(n, "out").unwrap();
    for i in 0..n {
        buf_a.set_i32(i, a[i]);
        buf_b.set_i32(i, b[i]);
    }

    // The driver picks the launch shape (one group per core, §4.2) and the
    // access pattern; the kernels never see the device kind.
    let launch = device.launch_config(n);
    let partials = device.alloc(launch.num_groups, "partials").unwrap();
    let reduce_launch = launch.clone().with_local_words(launch.group_size);

    let queue = device.create_queue();
    let map = Arc::new(MulKernel { a: buf_a, b: buf_b, out: out.clone() });
    let ev = queue.enqueue_kernel(map, launch.clone(), &[]).unwrap();
    let reduce = Arc::new(GroupSumKernel { input: out, partials: partials.clone() });
    queue.enqueue_kernel(reduce, reduce_launch, &[ev]).unwrap();

    // Lazy queue: both kernels are scheduled, nothing has run yet.
    assert!(queue.pending_ops() > 0, "work must be enqueued, not executed");
    queue.flush().unwrap();

    (0..launch.num_groups).fold(0i32, |acc, g| acc.wrapping_add(partials.get_i32(g)))
}

fn main() {
    let n = 100_000i32;
    let a: Vec<i32> = (0..n).map(|i| i.wrapping_mul(2_654_435_761u32 as i32)).collect();
    let b: Vec<i32> = (0..n).map(|i| (i % 1_000) - 500).collect();
    let expected = a.iter().zip(&b).fold(0i32, |acc, (x, y)| acc.wrapping_add(x.wrapping_mul(*y)));

    for device in [
        Device::cpu_sequential(),
        Device::cpu_multicore(),
        Device::simulated_gpu(GpuConfig::default()),
    ] {
        let got = dot_on(&device, &a, &b);
        assert_eq!(got, expected, "device {:?} diverged", device.info().kind);
        println!("{:>16?}: dot product {got} (matches host reference)", device.info().kind);
    }
    println!("ok: one custom kernel pipeline, three devices, identical results");
}
