//! Device portability through the session API: the *same compiled plan*
//! executes on every Ocelot device.
//!
//! Run with `cargo run --release -p ocelot-examples --example device_portability`.
//!
//! A TPC-H Q6 plan is compiled once and admitted to a [`Session`] per
//! Ocelot device (sequential CPU, multi-core CPU, simulated discrete GPU).
//! Each session is created from a [`SharedDevice`], so it owns a private
//! command queue — the example verifies the PR 2/PR 3 contract that the
//! whole plan flushes that queue exactly once — while result buffers
//! recycle through the device's shared pool. A second session per device
//! demonstrates the cross-context reuse: its allocations are served from
//! the first session's finished intermediates.

use ocelot_core::SharedDevice;
use ocelot_engine::{QueryValue, Session};
use ocelot_tpch::{q6_plan, TpchConfig, TpchDb};

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 11 });
    let plan = q6_plan(&db).expect("q6 compiles");
    println!("Q6 as a compiled plan: {} operator nodes\n", plan.len());

    let devices = [SharedDevice::cpu_sequential(), SharedDevice::cpu(), SharedDevice::gpu()];
    let mut revenues = Vec::new();
    for shared in &devices {
        let session = Session::ocelot(shared);
        let flushes_before = session.backend().context().queue().flush_count();
        let values = session.run(&plan, db.catalog()).expect("q6 runs");
        let revenue = match values.as_slice() {
            [QueryValue::Scalar(revenue)] => *revenue,
            other => panic!("unexpected q6 result: {other:?}"),
        };
        let flushes = session.backend().context().queue().flush_count() - flushes_before;
        assert_eq!(flushes, 1, "the whole plan must flush exactly once");

        // A second session on the same device: same result, and its result
        // buffers come out of the shared pool the first session filled.
        let second = Session::ocelot(shared);
        let again = second.run(&plan, db.catalog()).expect("q6 runs again");
        assert_eq!(again, values, "sessions on one device agree exactly");
        let hits = second.backend().context().memory().stats().recycle_hits;
        assert!(hits > 0, "the second session must reuse pooled buffers");

        println!(
            "{:<24} revenue = {revenue:>12.2}   flushes/plan = {flushes}   \
             pool hits (2nd session) = {hits}",
            session.name(),
        );
        revenues.push(revenue);
    }

    // Hardware obliviousness: every device computed the same revenue.
    let reference = revenues[0];
    for revenue in &revenues {
        assert!(
            (revenue - reference).abs() / reference.abs().max(1.0) < 1e-3,
            "{revenue} vs {reference}"
        );
    }
    println!("\nAll Ocelot devices agree — one plan, three drivers.");
}
