//! Fault injection and the unified recovery protocol, end to end.
//!
//! Run with `cargo run --release -p ocelot-examples --example fault_tolerance`.
//!
//! Two demonstrations against DSL-lowered TPC-H plans:
//!
//! 1. **Scripted transient faults.** A CPU device is given an exact fault
//!    schedule (one kernel launch and one transfer fail transiently). The
//!    plan executor retries the failed nodes with its deterministic
//!    backoff schedule; the query still returns the reference result, and
//!    every retry is visible in the session's recovery counters and trace.
//! 2. **Device loss and failover.** A (simulated discrete) GPU device is
//!    scripted to drop off the bus mid-plan. The session invalidates the
//!    lost device's cached state, re-lowers the logical query onto its
//!    fallback CPU session and re-runs there — the result is exactly equal
//!    to a fault-free CPU run, with the failover counted.

use ocelot_core::SharedDevice;
use ocelot_engine::{PlanError, RecoveryEvent, Session};
use ocelot_kernel::{FaultPlan, FaultSpec};
use ocelot_tpch::{q3_query, q6_query, TpchConfig, TpchDb};

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 31 });
    let q6 = q6_query(&db).lower(db.catalog()).unwrap();
    let q3 = q3_query(&db).lower(db.catalog()).unwrap();
    let reference_q6 = Session::ocelot(&SharedDevice::cpu()).run(&q6, db.catalog()).unwrap();
    let reference_q3 = Session::ocelot(&SharedDevice::cpu()).run(&q3, db.catalog()).unwrap();

    // --- 1. Scripted transient faults: retried, invisibly. ---
    let flaky = SharedDevice::cpu();
    flaky.device().install_fault_plan(FaultPlan::scripted(vec![
        FaultSpec::TransientKernel { at_launch: 3 },
        FaultSpec::TransientTransfer { at_transfer: 1 },
    ]));
    let session = Session::ocelot(&flaky);
    let result = session.run(&q6, db.catalog()).unwrap();
    assert_eq!(result, reference_q6, "retried runs must be reference-equal");
    let stats = session.recovery_stats();
    assert_eq!(stats.retries, 2, "both scripted faults retried: {stats:?}");
    assert_eq!(stats.failovers, 0);
    let retried_sites: Vec<String> = session
        .recovery_trace()
        .iter()
        .filter_map(|event| match event {
            RecoveryEvent::TransientRetry { site, op, .. } => Some(format!("{site} (op {op})")),
            _ => None,
        })
        .collect();
    assert_eq!(retried_sites.len(), 2);
    let injected = flaky.device().fault_stats().expect("fault plan installed");
    println!(
        "transient: {} faults injected ({} launches, {} transfers observed), \
         {} retries [{}], result correct",
        injected.total(),
        injected.transient_kernel,
        injected.transient_transfer,
        stats.retries,
        retried_sites.join(", "),
    );

    // --- 2. Device loss mid-plan: heal by failing over. ---
    let lost = SharedDevice::gpu();
    lost.device().install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 8 }]));
    let session = Session::ocelot(&lost).with_fallback(Session::ocelot(&SharedDevice::cpu()));
    let result = session.run(&q3, db.catalog()).unwrap();
    assert_eq!(result, reference_q3, "failover must deliver reference-equal results");
    assert!(lost.device().is_lost(), "loss is sticky");
    let stats = session.recovery_stats();
    assert_eq!(stats.failovers, 1, "one loss, one failover: {stats:?}");
    let target = session
        .recovery_trace()
        .iter()
        .find_map(|event| match event {
            RecoveryEvent::Failover { to } => Some(to.clone()),
            _ => None,
        })
        .expect("the failover must be traced");
    println!("device loss: GPU lost at op 8, failed over to {target}, result correct");

    // Without a fallback the same loss is a typed error, never a panic.
    let doomed = SharedDevice::gpu();
    doomed
        .device()
        .install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 8 }]));
    let err = Session::ocelot(&doomed).run(&q3, db.catalog()).unwrap_err();
    assert_eq!(err, PlanError::DeviceLost);
    println!("device loss without fallback: typed error `{err}`");
    println!("ok: transient faults retry invisibly; device loss heals via failover");
}
