//! examples helper lib (intentionally empty)
