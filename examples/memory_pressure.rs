//! Memory pressure: the device column cache, eviction and the OOM-restart
//! protocol, end to end.
//!
//! Run with `cargo run --release -p ocelot-examples --example memory_pressure`.
//!
//! Two demonstrations:
//!
//! 1. **Warm column cache.** A stream of sessions re-running TPC-H Q6 on
//!    one shared (simulated discrete) device: the first session uploads
//!    the four lineitem columns the query binds, every later session binds
//!    them from the device-resident cache — zero host→device bytes, proven
//!    with the queue's transfer accounting.
//! 2. **Pressure.** The same query stream under a device-memory budget
//!    smaller than its working set: resident columns are evicted (second
//!    chance), nodes that still run out of memory are *restarted* after a
//!    release+evict reclaim pass (the paper's OOM-restart discipline), and
//!    every query still returns the reference result.

use ocelot_core::SharedDevice;
use ocelot_engine::Session;
use ocelot_tpch::{run_query, QueryResult, TpchConfig, TpchDb};

/// Device budget for the pressure run: ~65% of the stream's base-column
/// working set at this scale factor — small enough to force eviction and
/// node restarts, large enough for every single plan's pinned set.
const PRESSURE_BUDGET: usize = 512 * 1024;

fn check(label: &str, actual: &QueryResult, expected: &QueryResult) {
    assert!(
        actual.approx_eq(expected, 1e-3),
        "{label}: q{} diverged from the reference",
        expected.query
    );
}

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 31 });
    let reference = Session::monet_seq();
    let stream = [6u32, 3, 4, 12, 6, 3, 12, 6];
    let expected: Vec<QueryResult> =
        stream.iter().map(|&q| run_query(&reference, &db, q).unwrap()).collect();

    // --- 1. Warm column cache: re-running Q6 re-uploads nothing. ---
    let shared = SharedDevice::gpu();
    let cold = Session::ocelot(&shared);
    check("cold", &run_query(&cold, &db, 6).unwrap(), &expected[0]);
    let cold_bytes = cold.backend().context().queue().total_stats().bytes_to_device;
    assert!(cold_bytes > 0, "the cold session pays the uploads");
    for rerun in 0..3 {
        let warm = Session::ocelot(&shared);
        check("warm", &run_query(&warm, &db, 6).unwrap(), &expected[0]);
        let warm_bytes = warm.backend().context().queue().total_stats().bytes_to_device;
        assert_eq!(warm_bytes, 0, "warm rerun {rerun} must upload nothing");
    }
    let stats = shared.cache().stats();
    assert!(stats.hits >= 12, "three warm Q6 runs bind four columns each: {stats:?}");
    println!(
        "warm cache: cold session uploaded {cold_bytes} bytes, 3 warm sessions uploaded 0 \
         ({} hits, {} misses)",
        stats.hits, stats.misses
    );

    // --- 2. Pressure: tiny budget => eviction + node restarts. ---
    let pressured = SharedDevice::cpu().with_memory_budget(PRESSURE_BUDGET);
    let mut restarts = 0;
    for (&query, expected) in stream.iter().zip(&expected) {
        let session = Session::ocelot(&pressured);
        check("pressured", &run_query(&session, &db, query).unwrap(), expected);
        restarts += session.backend().reclaim_count();
    }
    let stats = pressured.cache().stats();
    assert!(stats.evictions > 0, "the budget must force eviction: {stats:?}");
    assert!(restarts > 0, "at least one node must restart under pressure");
    println!(
        "pressure: {} queries under a {} KiB budget (working set {} KiB): \
         {} evictions, {} hits, {} node restarts, all results correct",
        stream.len(),
        PRESSURE_BUDGET / 1024,
        db.payload_bytes() / 1024,
        stats.evictions,
        stats.hits,
        restarts,
    );
    println!("ok: warm reruns upload nothing; pressured streams survive via eviction + restart");
}
