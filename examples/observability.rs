//! Engine-wide observability end to end: per-node EXPLAIN ANALYZE under
//! memory pressure, a unified metrics registry, and a Chrome-trace
//! timeline of a two-tenant serve run.
//!
//! Run with `cargo run --release -p ocelot-examples --example observability`.
//!
//! Three demonstrations:
//!
//! 1. **EXPLAIN ANALYZE.** TPC-H Q3's in-memory join runs under a device
//!    budget below its working set. The profile attributes wall time,
//!    rows, kernels, transfers and flushes to every plan node — and pins
//!    the recovery work (OOM restarts, spills) on the node that incurred
//!    it. The per-node times plus the accounted overhead sum to the plan
//!    total *exactly* (the conservation invariant is epsilon = 0).
//! 2. **Unified metrics registry.** The same session renders every
//!    subsystem's counters (queue, memory, pool, cache, recovery) under
//!    one namespace, without disturbing the existing typed accessors.
//! 3. **Timeline export.** A two-tenant serve run records plan-cache
//!    lookups, scheduler admissions and the sessions' kernel/flush events
//!    into one `TraceSink`, exported as Chrome trace-event JSON
//!    (chrome://tracing / Perfetto) with tenants as processes and jobs as
//!    threads.

use ocelot_core::SharedDevice;
use ocelot_engine::{
    Lane, PlanCache, QueryJob, SchedAction, ServeJob, ServeScheduler, Session, TraceEventKind,
    TraceSink,
};
use ocelot_tpch::{q3_query, q6_params, q6_query_p, TpchConfig, TpchDb};
use std::sync::Arc;

/// Device budget for the pressured Q3 run: below the in-memory join's
/// working set at this scale factor, so the join node must recover.
const DEVICE_BUDGET: usize = 2048 * 1024;

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.01, seed: 31 });
    let catalog = db.catalog();

    // --- 1. EXPLAIN ANALYZE: pressured Q3, per-node attribution. -------
    let plan = q3_query(&db).lower(catalog).unwrap();
    let pressured = SharedDevice::cpu().with_memory_budget(DEVICE_BUDGET);
    let session = Session::ocelot(&pressured);
    let (_, profile) = session.explain_analyze(&plan, catalog).unwrap();
    print!("{}", profile.render());

    assert_eq!(
        profile.total_host_ns,
        profile.nodes_host_ns() + profile.overhead_ns,
        "node times + overhead must sum to the plan total exactly"
    );
    assert_eq!(profile.nodes.len(), plan.len(), "every node is profiled");
    let recovered = profile
        .nodes
        .iter()
        .find(|n| n.restarts > 0 || n.marker.spills > 0)
        .expect("the budget must force restart-or-spill work onto the join");
    println!(
        "attribution: node {} ({}) absorbed the pressure — {} restart(s), {} spill(s)",
        recovered.index,
        recovered.op.split_whitespace().next().unwrap_or(&recovered.op),
        recovered.restarts,
        recovered.marker.spills,
    );

    // --- 2. The unified metrics registry on the same session. ----------
    let metrics = session.metrics();
    assert!(metrics.counter("ocelot.queue.kernels").unwrap() > 0);
    assert!(
        metrics.counter("ocelot.reclaims").unwrap() > 0
            || metrics.counter("ocelot.spill.spills").unwrap() > 0,
        "the pressured run must show up in the registry"
    );
    assert_eq!(
        metrics.counter("session.recovery.oom_restarts").unwrap(),
        profile.recovery.oom_restarts,
        "the registry absorbs the typed stats without changing them"
    );
    println!("metrics registry: {} counters, e.g.", metrics.len());
    for name in ["ocelot.queue.kernels", "ocelot.queue.flushes", "session.recovery.oom_restarts"] {
        println!("  {name} = {}", metrics.counter(name).unwrap());
    }

    // --- 3. Chrome trace of a two-tenant serve run. --------------------
    let shared = SharedDevice::cpu();
    let sink = Arc::new(TraceSink::new());
    let cache = PlanCache::on(&shared);
    cache.trace().attach(Arc::clone(&sink));
    let q6 = q6_query_p(&db);
    let _ = cache.plan(&q6, &q6_params(), catalog).unwrap(); // cold: a miss
    let q6_plan = cache.plan(&q6, &q6_params(), catalog).unwrap(); // warm: a hit

    let sessions: Vec<Session<_>> = (0..4).map(|_| Session::ocelot(&shared)).collect();
    for s in &sessions {
        s.attach_tracer(&sink);
    }
    let jobs: Vec<ServeJob<'_, _>> = sessions
        .iter()
        .enumerate()
        .map(|(i, session)| ServeJob {
            job: QueryJob { session, plan: &q6_plan, catalog },
            tenant: i % 2,
            lane: if i == 3 { Lane::Interactive } else { Lane::Batch },
        })
        .collect();
    let scheduler = ServeScheduler::new().with_in_flight(2);
    scheduler.trace().attach(Arc::clone(&sink));
    let outcome = scheduler.run(&jobs);
    scheduler.trace().detach();
    for s in &sessions {
        s.detach_tracer();
    }
    cache.trace().detach();
    assert!(outcome.results.iter().all(|r| r.is_ok()));

    // The timeline carries every layer's events, in asserted numbers.
    let sched = |action: SchedAction| {
        sink.count(|e| matches!(e.kind, TraceEventKind::Sched { action: a, .. } if a == action))
    };
    assert_eq!(sched(SchedAction::Submit), 4, "one submission per job");
    assert_eq!(sched(SchedAction::Admit), 4, "all four jobs admit");
    assert_eq!(sched(SchedAction::Reject), 0, "nothing is shed below capacity");
    assert_eq!(sched(SchedAction::Complete), 4, "all four jobs complete");
    let hits = sink.count(|e| matches!(e.kind, TraceEventKind::PlanCache { hit: true }));
    let misses = sink.count(|e| matches!(e.kind, TraceEventKind::PlanCache { hit: false }));
    assert_eq!((misses, hits), (1, 1), "one cold compile, one cached binding");
    let flushes = sink.count(|e| matches!(e.kind, TraceEventKind::Flush { .. }));
    assert_eq!(flushes, 4, "one effective flush per admitted Q6 plan");
    let kernels = sink.count(|e| matches!(e.kind, TraceEventKind::Kernel { .. }));
    assert!(kernels > 0, "queue-level kernel events share the timeline");

    let chrome = sink.to_chrome_trace();
    assert!(chrome.contains("\"cat\":\"sched\""));
    assert!(chrome.contains("\"cat\":\"serve\""));
    assert!(chrome.contains("\"cat\":\"queue\""));
    std::fs::write("observability_trace.json", &chrome).unwrap();
    println!(
        "timeline: {} events ({kernels} kernels, {flushes} flushes, 4 admissions, \
         1 plan-cache miss + 1 hit) -> observability_trace.json ({} bytes, \
         chrome://tracing format)",
        sink.len(),
        chrome.len(),
    );
    println!("ok: per-node attribution, one metrics namespace, one timeline");
}
