//! Out-of-core execution: a join whose working set exceeds the device
//! budget completes through *planned spilling* instead of OOM restarts.
//!
//! Run with `cargo run --release -p ocelot-examples --example out_of_core`.
//!
//! The demonstration pits the two recovery disciplines against each other
//! on the same Q3-shaped three-table join under the same device budget:
//!
//! 1. **Reactive (PR 4).** The in-memory hash-join plan runs under a
//!    budget smaller than its working set. Every `OutOfDeviceMemory` fault
//!    unwinds the executing node, a reclaim pass evicts what it can, and
//!    the node restarts — correct, but the work up to the fault is thrown
//!    away each time (`reclaim_count() > 0`).
//! 2. **Planned (this PR).** Lowering is told the budget up front
//!    (`RewriteConfig::with_device_budget`), estimates the join working
//!    set from catalog statistics and emits the *partitioned* hybrid hash
//!    join instead: build and probe sides are radix-partitioned, hot
//!    partitions stay device-resident, cold ones spill to host staging and
//!    stream back one pair at a time. Same result, zero restarts, and the
//!    spill accounting proves the out-of-core path actually engaged.

use ocelot_core::SharedDevice;
use ocelot_engine::{RewriteConfig, Session};
use ocelot_tpch::{q3_query, TpchConfig, TpchDb};

/// Device budget for both runs: below the in-memory join's working set at
/// this scale factor (so the reactive path must restart), above the
/// partitioned join's bounded transient peak (so the planned path never
/// faults).
const DEVICE_BUDGET: usize = 2048 * 1024;

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.01, seed: 31 });
    let catalog = db.catalog();

    // Reference: the in-memory plan on an unconstrained device.
    let in_memory = q3_query(&db).lower_with(catalog, &RewriteConfig::optimized()).unwrap();
    let reference = Session::ocelot(&SharedDevice::cpu());
    let expected = reference.run(&in_memory, catalog).unwrap();

    // --- 1. Reactive: in-memory plan under the budget => restarts. ---
    let pressured = SharedDevice::cpu().with_memory_budget(DEVICE_BUDGET);
    let session = Session::ocelot(&pressured);
    let got = session.run(&in_memory, catalog).unwrap();
    assert_eq!(got, expected, "the restart protocol must still be correct");
    let restarts = session.backend().reclaim_count();
    assert!(restarts > 0, "the in-memory plan must not fit the budget");
    println!(
        "reactive: in-memory Q3 join under a {} KiB budget survives via {restarts} OOM \
         restart(s)",
        DEVICE_BUDGET / 1024
    );

    // --- 2. Planned: budget-aware lowering => spill, zero restarts. ---
    let plan = q3_query(&db)
        .lower_with(catalog, &RewriteConfig::optimized().with_device_budget(DEVICE_BUDGET))
        .unwrap();
    let budgeted = SharedDevice::cpu().with_memory_budget(DEVICE_BUDGET);
    let session = Session::ocelot(&budgeted);
    let got = session.run(&plan, catalog).unwrap();
    assert_eq!(got, expected, "the partitioned join must be reference-equal");
    let restarts = session.backend().reclaim_count();
    let spills = session.backend().spill_stats();
    assert_eq!(restarts, 0, "planned spilling must replace the restart protocol");
    assert!(spills.spills > 0, "the budget must force cold partitions to spill");
    assert_eq!(spills.unspills, spills.spills, "every spilled partition streams back");
    println!(
        "planned: partitioned Q3 join under the same budget: 0 restarts, {} partitions \
         ({} hot), {} spills / {} unspills, {} KiB staged to host",
        spills.partitions,
        spills.hot,
        spills.spills,
        spills.unspills,
        spills.spilled_bytes / 1024,
    );
    println!("ok: same budget, same result — planned spill replaces reactive restart");
}
