//! Quickstart: the typed deferred device-value API, end to end.
//!
//! Run with `cargo run --release -p ocelot-examples --example quickstart`.
//!
//! The same operator code runs on every device (sequential CPU, multi-core
//! CPU, simulated discrete GPU). Every operator returns a *deferred* value —
//! a typed `DevColumn<T>` or a one-word `DevScalar<T>` — and nothing touches
//! the device queue until the final `.get()` / `.read()`: the pipeline below
//! flushes exactly once per device, which the example verifies with the
//! queue's `flush_count()` observability hook.

use ocelot_core::ops::select;
use ocelot_core::primitives::{gather, reduce};
use ocelot_core::OcelotContext;

fn main() {
    // A miniature workload: revenue = sum(price[i]) over rows whose key
    // falls in [100, 300] — one select, one materialise (count-scan-write),
    // one gather, one reduction.
    let keys: Vec<i32> = (0..100_000).map(|i| (i * 37 + 11) % 1000).collect();
    let prices: Vec<f32> = (0..100_000).map(|i| (i % 97) as f32 * 0.5).collect();
    let expected: f32 =
        keys.iter().zip(&prices).filter(|(k, _)| (100..=300).contains(*k)).map(|(_, p)| *p).sum();

    for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
        // Uploads only *schedule* host→device transfers.
        let k = ctx.upload_i32(&keys, "keys").expect("upload failed");
        let p = ctx.upload_f32(&prices, "prices").expect("upload failed");
        let flushes_before = ctx.queue().flush_count();

        // 1. Selection: a device-resident bitmap (no OID list yet).
        let bitmap = select::select_range_i32(&ctx, &k, 100, 300).expect("select failed");
        // 2. Materialisation: the qualifying OIDs. The cardinality is a
        //    *device counter* — the column's length is deferred.
        let oids = select::materialize_bitmap(&ctx, &bitmap).expect("materialize failed");
        assert!(oids.is_deferred(), "no host round-trip for the count");
        // 3. Gather: fetch the selected prices; the output inherits the
        //    deferred length (the kernel reads the counter at flush time).
        let selected = gather::gather(&ctx, &p, &oids).expect("gather failed");
        // 4. Reduction: a one-word deferred scalar.
        let revenue = reduce::sum_f32(&ctx, &selected).expect("sum failed");

        // Nothing has run yet — four operators, zero flushes.
        assert_eq!(ctx.queue().flush_count(), flushes_before);
        assert!(ctx.queue().pending_ops() > 0);

        // The single sync point: .get() flushes the queue once and reads
        // four bytes back (not the intermediates).
        let value = revenue.get(&ctx).expect("readback failed");
        let pipeline_flushes = ctx.queue().flush_count() - flushes_before;
        assert_eq!(pipeline_flushes, 1);
        assert!((value - expected).abs() / expected < 1e-3, "{value} vs {expected}");

        // The count is still available, also deferred-then-resolved (on the
        // discrete GPU this readback is its own transfer flush — the
        // pipeline itself still synchronised exactly once).
        let n = oids.len(&ctx).expect("length resolve failed");
        println!(
            "{:?}: revenue over {} selected rows = {:.1} ({} pipeline flush, {} kernels total)",
            ctx.device().info().kind,
            n,
            value,
            pipeline_flushes,
            ctx.queue().total_stats().kernels,
        );
    }
    println!("ok: every device agreed and every pipeline flushed exactly once");
}
