//! The serving layer end to end: prepared shapes, the device-wide
//! compiled-plan cache, and tenant-fair backpressured scheduling.
//!
//! Run with `cargo run --release -p ocelot-examples --example serving`.
//!
//! Three demonstrations:
//!
//! 1. **Parameterized plan cache.** TPC-H Q6 is authored once as a shape
//!    with `$0..$4` placeholders. The first execution compiles it (rewrite
//!    rules + column statistics + lowering — a **miss**); every later
//!    request only binds fresh literals into the cached optimized tree
//!    (a **hit**: no rewrite, no base-column scans) and runs.
//! 2. **Tenant fairness under a greedy tenant.** Tenant 0 floods the
//!    batch lane while tenant 1 submits two jobs. Deficit round-robin
//!    alternates their completions instead of letting the flood finish
//!    first, and the interactive lane admits strictly before batch.
//! 3. **Backpressure.** The flood exceeds the bounded per-tenant queue;
//!    the overflow is rejected up front with the typed
//!    `PlanError::Overloaded`, while every admitted job completes with
//!    reference-equal results.

use ocelot_core::SharedDevice;
use ocelot_engine::{Lane, PlanCache, PlanError, QueryJob, ServeJob, ServeScheduler, Session};
use ocelot_storage::types::date_to_days;
use ocelot_tpch::{q1_params, q1_query_p, q6_params, q6_query_p, TpchConfig, TpchDb};

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 47 });
    let catalog = db.catalog();
    let shared = SharedDevice::cpu();
    let session = Session::ocelot(&shared);

    // --- 1. One shape, many bindings: compile once, bind per request. ---
    let q6 = q6_query_p(&db);
    let cache = PlanCache::on(&shared);
    session.run_cached(&cache, &q6, &q6_params(), catalog).unwrap();
    for year in [1993, 1995, 1996] {
        let params = vec![
            date_to_days(year, 1, 1).into(),
            (date_to_days(year + 1, 1, 1) - 1).into(),
            (0.05f32 - 0.001).into(),
            (0.07f32 + 0.001).into(),
            23.5f32.into(),
        ];
        session.run_cached(&cache, &q6, &params, catalog).unwrap();
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (3, 1), "one compile serves every binding");
    let explain = cache.explain(&q6, &q6_params(), catalog).unwrap();
    assert!(explain.contains("last run: HIT"));
    println!(
        "plan cache: 4 executions of the Q6 shape = {} compile ({} hits); \
         explain says \"last run: HIT\"",
        stats.misses, stats.hits
    );

    // --- 2 + 3. A greedy tenant vs a polite one, bounded queues. -------
    let q6_plan = cache.plan(&q6, &q6_params(), catalog).unwrap();
    let q1_plan = cache.plan(&q1_query_p(&db), &q1_params(), catalog).unwrap();
    let reference = session.run(&q6_plan, catalog).unwrap();

    let capacity = 4;
    let greedy: Vec<Session<_>> = (0..2 * capacity).map(|_| Session::ocelot(&shared)).collect();
    let polite = [Session::ocelot(&shared), Session::ocelot(&shared)];
    let mut jobs: Vec<ServeJob<'_, _>> = greedy
        .iter()
        .map(|session| ServeJob {
            job: QueryJob { session, plan: &q6_plan, catalog },
            tenant: 0,
            lane: Lane::Batch,
        })
        .collect();
    jobs.push(ServeJob {
        job: QueryJob { session: &polite[0], plan: &q6_plan, catalog },
        tenant: 1,
        lane: Lane::Batch,
    });
    jobs.push(ServeJob {
        job: QueryJob { session: &polite[1], plan: &q1_plan, catalog },
        tenant: 1,
        lane: Lane::Interactive,
    });

    let outcome = ServeScheduler::new()
        .with_in_flight(1) // serialize so the completion order shows admission order
        .with_queue_capacity(capacity)
        .run(&jobs);

    let t0 = outcome.stats.tenant(0);
    let t1 = outcome.stats.tenant(1);
    assert_eq!(t0.rejected, capacity, "the flood beyond the bounded queue is shed");
    assert_eq!(t0.completed, capacity, "every admitted greedy job still completes");
    assert_eq!((t1.rejected, t1.completed), (0, 2), "the polite tenant is untouched");

    // The interactive job admits first; after it, DRR alternates tenants.
    let order = &outcome.stats.completion_order;
    assert_eq!(order[0], jobs.len() - 1, "interactive precedes every batch job");
    assert!(
        order[1..].windows(2).any(|w| jobs[w[0]].tenant != jobs[w[1]].tenant),
        "batch completions must interleave tenants: {order:?}"
    );

    let mut overloaded = 0;
    for (index, result) in outcome.results.iter().enumerate() {
        match result {
            Ok(values) if jobs[index].tenant == 0 || index == jobs.len() - 2 => {
                assert_eq!(values, &reference, "admitted jobs stay reference-equal");
            }
            Ok(_) => {} // the interactive Q1 has its own result shape
            Err(PlanError::Overloaded { queued, capacity }) => {
                assert_eq!((*queued, *capacity), (4, 4));
                overloaded += 1;
            }
            Err(other) => panic!("untyped failure: {other:?}"),
        }
    }
    assert_eq!(overloaded, capacity);
    println!(
        "fairness: completion order {order:?} (job {} is tenant 1's interactive Q1, \
         then DRR alternates the backlogged tenants)",
        jobs.len() - 1
    );
    println!(
        "backpressure: tenant 0 submitted {}, {} admitted + completed, {} rejected \
         with `{}`",
        t0.submitted,
        t0.completed,
        t0.rejected,
        PlanError::Overloaded { queued: 4, capacity: 4 },
    );
    println!("ok: one compile per shape, fair interleaving, typed shedding");
}
