//! TPC-H through the logical query algebra, end to end.
//!
//! Run with `cargo run --release -p ocelot-examples --example tpch_query`.
//!
//! Builds TPC-H Q6 in the declarative `Query` DSL, prints `explain()` —
//! the logical tree, the rewrite-rule annotations (selectivity ordering,
//! projection pruning) and the lowered physical plan — then executes the
//! *same* query on two different devices (multi-core CPU and the simulated
//! discrete GPU) plus the MonetDB-style host baseline, asserting all three
//! agree and that the lowered plan preserves the engine's one-flush-per-
//! plan invariant on both Ocelot devices.

use ocelot_core::SharedDevice;
use ocelot_engine::Session;
use ocelot_tpch::{q6_query, run_query, TpchConfig, TpchDb};

fn main() {
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.01, seed: 42 });
    println!(
        "generated TPC-H data: {} lineitem rows, {:.1} MiB payload\n",
        db.lineitem_rows(),
        db.payload_bytes() as f64 / (1024.0 * 1024.0)
    );

    // The engine picks the physical operators; explain() shows its work.
    let query = q6_query(&db);
    println!("{}", query.explain(db.catalog()).expect("q6 lowers"));

    // Host-side reference configuration.
    let reference = run_query(&Session::monet_seq(), &db, 6).expect("q6 runs on MS");
    let expected = reference.rows[0][0];
    println!("MS reference revenue: {expected:.2}");

    // The same logical query on two Ocelot devices, via run_query's DSL
    // path — each session's plan must flush its queue exactly once.
    for shared in [SharedDevice::cpu(), SharedDevice::gpu()] {
        let session = Session::ocelot(&shared);
        let flushes_before = session.backend().context().queue().flush_count();
        let result = run_query(&session, &db, 6).expect("q6 runs");
        let revenue = result.rows[0][0];
        let flushes = session.backend().context().queue().flush_count() - flushes_before;
        assert_eq!(flushes, 1, "{}: the lowered plan must sync exactly once", session.name());
        assert!(
            (revenue - expected).abs() / expected.abs().max(1.0) < 1e-3,
            "{}: {revenue} vs {expected}",
            session.name()
        );
        println!("{}: revenue {revenue:.2} ({flushes} flush)", session.name());
    }
    println!("\nok: one declarative query, three configurations, identical answers");
}
