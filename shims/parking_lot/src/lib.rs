//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the exact API surface the workspace uses — `Mutex` / `RwLock` with
//! non-poisoning `lock()` / `read()` / `write()` — implemented over
//! `std::sync`. Poisoning is deliberately swallowed (`parking_lot` has no
//! poisoning either): a panicked writer leaves the data in whatever state it
//! reached, matching parking_lot semantics closely enough for this codebase.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(*l.read(), "ab");
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
