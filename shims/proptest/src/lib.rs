//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] (plain assertion wrappers),
//! * [`any`] for `i32` / `f32` / `u32`,
//! * integer range strategies (`-50i32..50`),
//! * tuple strategies (`(0i32..4, 1u32..9)`), pairs and triples,
//! * simple character-class string patterns (`"[A-Z]{1,8}"`),
//! * [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! every test runs a fixed number of deterministic cases (seeded from the
//! test name), which keeps the suite reproducible without any external state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Cases each `proptest!` test executes.
pub const NUM_CASES: usize = 64;

/// Deterministic per-test RNG.
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the RNG for a named test; equal names yield equal sequences.
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// `any::<T>()` — arbitrary values of a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator (subset of proptest's `Arbitrary`).
pub trait Arbitrary {
    /// Draws an arbitrary value (any bit pattern is fair game).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Any bit pattern, NaNs included — callers comparing generated floats
        // do so via to_bits(), like real proptest's any::<f32>() users must.
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// String strategies from simple character-class patterns.
///
/// Supports exactly the `"[CLASS]{min,max}"` shape (e.g. `"[A-Z]{1,8}"`,
/// `"[a-z0-9]{2,4}"`); anything else panics, loudly, so an unsupported
/// pattern is caught the first time a test runs.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = rng.0.gen_range(min..=max);
        (0..len).map(|_| alphabet[rng.0.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            chars.next();
            let end = chars.next()?;
            if (c as u32) > (end as u32) {
                return None;
            }
            for code in (c as u32)..=(end as u32) {
                alphabet.push(char::from_u32(code)?);
            }
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut prop_rng = $crate::TestRng::deterministic(stringify!($name));
                for prop_case in 0..$crate::NUM_CASES {
                    let _ = prop_case;
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Condition assertion inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {

    #[test]
    fn pattern_parser_handles_classes_and_ranges() {
        let (alphabet, min, max) = super::parse_class_pattern("[A-Z]{1,8}").unwrap();
        assert_eq!(alphabet.len(), 26);
        assert_eq!((min, max), (1, 8));
        let (alphabet, _, _) = super::parse_class_pattern("[a-c9]{2,2}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '9']);
        assert!(super::parse_class_pattern("plain").is_none());
    }

    proptest! {
        #[test]
        fn generated_values_respect_strategies(
            xs in super::collection::vec(-50i32..50, 0..300),
            s in "[A-Z]{1,8}",
            probe in -60i32..60,
        ) {
            prop_assert!(xs.len() < 300);
            prop_assert!(xs.iter().all(|x| (-50..50).contains(x)));
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_uppercase()));
            prop_assert!((-60..60).contains(&probe));
        }
    }
}
