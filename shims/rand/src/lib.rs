//! Minimal in-repo stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no access to crates.io, so this shim provides
//! the surface the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`
//! and `Rng::gen_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic across runs and
//! platforms, which is all the TPC-H data generator needs (equal seeds must
//! produce identical databases; bit-compatibility with the real `rand` crate
//! is *not* required and not provided).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 random mantissa bits → uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start() as f64, *self.end() as f64);
                assert!(start <= end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (start + unit * (end - start)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w: i32 = rng.gen_range(1..=7);
            assert!((1..=7).contains(&w));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f32 = rng.gen_range(900.0..2100.0);
            assert!((900.0..2100.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
