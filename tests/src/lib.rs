//! Cross-crate integration suites.
//!
//! The headline suite here is the **sync-boundary regression**: the deferred
//! device-value API (`DevScalar<T>` / typed `DevColumn<T>`) promises that a
//! chained operator pipeline enqueues everything and flushes the command
//! queue exactly once, at the final `.get()`/`.read()`. These tests pin that
//! contract with [`ocelot_kernel::Queue::flush_count`] and `FlushStats`
//! across every Ocelot device, and property-test that deferred results equal
//! eager host computations across all four evaluated backends.

#[cfg(test)]
mod sync_boundary {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::{gather, reduce};
    use ocelot_core::OcelotContext;

    fn test_data() -> (Vec<i32>, Vec<f32>) {
        let keys: Vec<i32> = (0..50_000).map(|i| (i * 37 + 11) % 1000).collect();
        let payload: Vec<f32> = (0..50_000).map(|i| (i % 97) as f32 * 0.5).collect();
        (keys, payload)
    }

    fn expected_sum(keys: &[i32], payload: &[f32]) -> f32 {
        keys.iter().zip(payload).filter(|(k, _)| (100..=300).contains(*k)).map(|(_, p)| *p).sum()
    }

    /// The acceptance pipeline: select → scan (inside materialise) → gather
    /// → sum, with exactly one queue flush at the final `.get()`.
    fn run_pipeline(ctx: &OcelotContext) {
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let flushes_before = ctx.queue().flush_count();
        let stats_before = ctx.queue().total_stats();

        let bitmap = select::select_range_i32(ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
        let fetched = gather::gather(ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(ctx, &fetched).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before,
            "select→scan→gather→sum must not flush on {:?}",
            ctx.device().info().kind
        );
        assert!(ctx.queue().pending_ops() > 0, "work must be enqueued, not executed");

        let value = total.get(ctx).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before + 1,
            "exactly one flush, at the final .get(), on {:?}",
            ctx.device().info().kind
        );

        let expected = expected_sum(&keys, &payload);
        assert!((value - expected).abs() / expected.abs().max(1.0) < 1e-3, "{value} vs {expected}");

        // FlushStats cross-check: the single flush executed the whole chain
        // (select, count, 3 scan phases, write positions, gather, 2 reduce
        // phases).
        let delta_kernels = ctx.queue().total_stats().kernels - stats_before.kernels;
        assert!(delta_kernels >= 7, "the chain's kernels all ran in the one flush");
    }

    #[test]
    fn pipeline_flushes_once_on_all_ocelot_devices() {
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            run_pipeline(&ctx);
        }
    }

    #[test]
    fn gpu_reads_back_one_word_not_the_intermediates() {
        // The deferred design's bandwidth win, in FlushStats terms: on the
        // discrete device the only device→host transfer of the whole
        // pipeline is the four-byte scalar readback.
        let ctx = OcelotContext::gpu();
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let before = ctx.queue().total_stats();
        let bitmap = select::select_range_i32(&ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
        let fetched = gather::gather(&ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(&ctx, &fetched).unwrap();
        let _ = total.get(&ctx).unwrap();
        let delta = ctx.queue().total_stats().bytes_from_device - before.bytes_from_device;
        assert_eq!(delta, 4, "only the one-word scalar crosses back to the host");
    }
}

#[cfg(test)]
mod deferred_vs_eager {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::reduce;
    use ocelot_core::OcelotContext;
    use ocelot_engine::{Backend, MonetParBackend, MonetSeqBackend, OcelotBackend};
    use proptest::collection;
    use proptest::prelude::*;

    fn ocelot_contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    fn check_backend<B: Backend>(backend: &B, values: &[f32], expected: (f32, f32, f32)) {
        let col = backend.lift_f32(values.to_vec());
        let sum = backend.sum_f32(&col);
        prop_assert!(
            (sum - expected.0).abs() / expected.0.abs().max(1.0) < 1e-3,
            "{}: {} vs {}",
            backend.name(),
            sum,
            expected.0
        );
        prop_assert_eq!(backend.min_f32(&col), expected.1, "{}", backend.name());
        prop_assert_eq!(backend.max_f32(&col), expected.2, "{}", backend.name());
        // The deferred one-element column path agrees bit-exactly with the
        // eager scalar path of the same backend.
        let deferred = backend.to_f32(&backend.sum_scalar_f32(&col));
        prop_assert_eq!(deferred[0].to_bits(), sum.to_bits(), "{}", backend.name());
    }

    proptest! {
        #[test]
        fn devscalar_integer_reductions_equal_eager_readbacks(
            values in collection::vec(-10_000i32..10_000, 1..400),
        ) {
            let sum: i32 = values.iter().fold(0i32, |a, v| a.wrapping_add(*v));
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                prop_assert_eq!(reduce::sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), sum);
                prop_assert_eq!(reduce::min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), min);
                prop_assert_eq!(reduce::max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), max);
            }
        }

        #[test]
        fn devscalar_selected_counts_equal_eager_readbacks(
            values in collection::vec(0i32..100, 0..300),
        ) {
            let expected = values.iter().filter(|v| (25..=75).contains(*v)).count() as u32;
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                let bitmap = select::select_range_i32(&ctx, &col, 25, 75).unwrap();
                let count = select::selected_count(&ctx, &bitmap).unwrap();
                prop_assert_eq!(count.get(&ctx).unwrap(), expected);
                // Deferred lengths resolve to the same cardinality.
                let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
                prop_assert_eq!(oids.len(&ctx).unwrap(), expected as usize);
            }
        }

        #[test]
        fn backend_aggregates_agree_across_all_four_backends(
            raw in collection::vec(-500i32..500, 1..300),
        ) {
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.25).collect();
            let reference = MonetSeqBackend::new();
            let expected = (
                reference.sum_f32(&reference.lift_f32(values.clone())),
                reference.min_f32(&reference.lift_f32(values.clone())),
                reference.max_f32(&reference.lift_f32(values.clone())),
            );
            check_backend(&MonetParBackend::new(), &values, expected);
            check_backend(&OcelotBackend::cpu(), &values, expected);
            check_backend(&OcelotBackend::cpu_sequential(), &values, expected);
            check_backend(&OcelotBackend::gpu(), &values, expected);
        }
    }
}
