//! integration test helpers
