//! Cross-crate integration suites.
//!
//! Two headline suites:
//!
//! * **Sync-boundary regression** — the deferred device-value API
//!   (`DevScalar<T>` / typed `DevColumn<T>`) promises that a chained
//!   operator pipeline enqueues everything and flushes the command queue
//!   exactly once, at the final `.get()`/`.read()`. Pinned with
//!   [`ocelot_kernel::Queue::flush_count`] and `FlushStats` across every
//!   Ocelot device, and property-tested (deferred == eager) across all four
//!   evaluated backends.
//! * **Session/scheduler regression** (PR 3) — interleaving N sessions'
//!   plans through the multi-query scheduler yields results identical to
//!   running each plan alone; concurrently admitted TPC-H Q6 plans keep
//!   their per-plan single-flush bound; and the shared buffer pool serves
//!   one session's allocations from another session's finished
//!   intermediates (cross-context recycling hit-rate > 0).

use ocelot_tpch::QueryResult;

/// Asserts two [`QueryResult`]s agree within a relative float tolerance of
/// `1e-3` — the shared comparison every cross-backend suite uses instead
/// of re-deriving its own ad-hoc tolerance. Panics with both results and
/// the `label` on divergence.
pub fn assert_results_close(label: &str, actual: &QueryResult, expected: &QueryResult) {
    assert_results_close_tol(label, actual, expected, 1e-3);
}

/// [`assert_results_close`] with an explicit relative tolerance.
pub fn assert_results_close_tol(
    label: &str,
    actual: &QueryResult,
    expected: &QueryResult,
    rel_tol: f64,
) {
    assert!(
        actual.approx_eq(expected, rel_tol),
        "{label}: q{} diverged\nactual:   {actual:?}\nexpected: {expected:?}",
        expected.query
    );
}

#[cfg(test)]
mod sync_boundary {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::{gather, reduce};
    use ocelot_core::OcelotContext;

    fn test_data() -> (Vec<i32>, Vec<f32>) {
        let keys: Vec<i32> = (0..50_000).map(|i| (i * 37 + 11) % 1000).collect();
        let payload: Vec<f32> = (0..50_000).map(|i| (i % 97) as f32 * 0.5).collect();
        (keys, payload)
    }

    fn expected_sum(keys: &[i32], payload: &[f32]) -> f32 {
        keys.iter().zip(payload).filter(|(k, _)| (100..=300).contains(*k)).map(|(_, p)| *p).sum()
    }

    /// The acceptance pipeline: select → scan (inside materialise) → gather
    /// → sum, with exactly one queue flush at the final `.get()`.
    fn run_pipeline(ctx: &OcelotContext) {
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let flushes_before = ctx.queue().flush_count();
        let stats_before = ctx.queue().total_stats();

        let bitmap = select::select_range_i32(ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
        let fetched = gather::gather(ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(ctx, &fetched).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before,
            "select→scan→gather→sum must not flush on {:?}",
            ctx.device().info().kind
        );
        assert!(ctx.queue().pending_ops() > 0, "work must be enqueued, not executed");

        let value = total.get(ctx).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before + 1,
            "exactly one flush, at the final .get(), on {:?}",
            ctx.device().info().kind
        );

        let expected = expected_sum(&keys, &payload);
        assert!((value - expected).abs() / expected.abs().max(1.0) < 1e-3, "{value} vs {expected}");

        // FlushStats cross-check: the single flush executed the whole chain
        // (select, count, 3 scan phases, write positions, gather, 2 reduce
        // phases).
        let delta_kernels = ctx.queue().total_stats().kernels - stats_before.kernels;
        assert!(delta_kernels >= 7, "the chain's kernels all ran in the one flush");
    }

    #[test]
    fn pipeline_flushes_once_on_all_ocelot_devices() {
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            run_pipeline(&ctx);
        }
    }

    #[test]
    fn gpu_reads_back_one_word_not_the_intermediates() {
        // The deferred design's bandwidth win, in FlushStats terms: on the
        // discrete device the only device→host transfer of the whole
        // pipeline is the four-byte scalar readback.
        let ctx = OcelotContext::gpu();
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let before = ctx.queue().total_stats();
        let bitmap = select::select_range_i32(&ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
        let fetched = gather::gather(&ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(&ctx, &fetched).unwrap();
        let _ = total.get(&ctx).unwrap();
        let delta = ctx.queue().total_stats().bytes_from_device - before.bytes_from_device;
        assert_eq!(delta, 4, "only the one-word scalar crosses back to the host");
    }
}

#[cfg(test)]
mod sessions {
    use ocelot_core::SharedDevice;
    use ocelot_engine::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_engine::plan::Plan;
    use ocelot_engine::{QueryJob, QueryValue, Scheduler, Session};
    use ocelot_storage::{Bat, Catalog, Table};
    use ocelot_tpch::{q6_plan, run_query, TpchConfig, TpchDb};
    use proptest::collection;
    use proptest::prelude::*;

    fn catalog(keys: &[i32], values: &[f32]) -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", keys.to_vec()).into_ref())
            .with_column("b", Bat::from_f32("b", values.to_vec()).into_ref());
        catalog.add_table(table);
        catalog
    }

    proptest! {
        /// N sessions' plans interleaved through the scheduler produce
        /// results identical to running every plan to completion alone —
        /// for any admission cap, on a shared device with a shared pool.
        #[test]
        fn interleaved_sessions_equal_sequential_execution(
            raw in collection::vec(-1_000i32..1_000, 50..400),
            bounds in collection::vec((-50i32..50, 0i32..80), 2..5),
        ) {
            let keys: Vec<i32> = raw.iter().map(|v| v % 100).collect();
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.125).collect();
            let catalog = catalog(&keys, &values);
            let plans: Vec<Plan> = bounds
                .iter()
                .map(|(low, width)| {
                    compile(&rewrite_for_ocelot(&example_plan(
                        "t", "a", "b", *low, *low + *width,
                    )))
                    .unwrap()
                })
                .collect();

            // Sequential reference: each plan alone, in its own session on
            // its own (fresh) shared device.
            let sequential: Vec<Vec<QueryValue>> = plans
                .iter()
                .map(|plan| {
                    Session::ocelot(&SharedDevice::cpu())
                        .run(plan, &catalog)
                        .unwrap()
                })
                .collect();

            // Interleaved: one session per plan on ONE shared device, all
            // plans admitted together (and with a partial admission cap).
            for in_flight in [2, plans.len()] {
                let shared = SharedDevice::cpu();
                let sessions: Vec<Session<_>> =
                    plans.iter().map(|_| Session::ocelot(&shared)).collect();
                let jobs: Vec<QueryJob<'_, _>> = plans
                    .iter()
                    .zip(&sessions)
                    .map(|(plan, session)| QueryJob { session, plan, catalog: &catalog })
                    .collect();
                let results = Scheduler::new().with_in_flight(in_flight).run(&jobs);
                for (index, result) in results.iter().enumerate() {
                    prop_assert_eq!(
                        result.as_ref().unwrap(),
                        &sequential[index],
                        "plan {} diverged under interleaving (in_flight={})",
                        index,
                        in_flight
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_q6_plans_share_the_pool_within_flush_bounds() {
        // The PR 3 acceptance scenario: two Q6 plans admitted concurrently
        // in two sessions of one shared device. Each plan must keep its
        // PR 2 bound (exactly one flush), produce the reference revenue,
        // and the pool must prove cross-context reuse.
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 23 });
        let plan = q6_plan(&db).unwrap();
        let reference = run_query(&Session::monet_seq(), &db, 6).unwrap();

        let shared = SharedDevice::cpu();
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        let jobs = [
            QueryJob { session: &a, plan: &plan, catalog: db.catalog() },
            QueryJob { session: &b, plan: &plan, catalog: db.catalog() },
        ];
        let results = Scheduler::new().with_in_flight(2).run(&jobs);
        for (session, result) in [&a, &b].into_iter().zip(&results) {
            let revenue = match result.as_ref().unwrap().as_slice() {
                [QueryValue::Scalar(revenue)] => *revenue as f64,
                other => panic!("unexpected q6 result {other:?}"),
            };
            let expected = reference.rows[0][0];
            assert!(
                (revenue - expected).abs() / expected.abs().max(1.0) < 1e-3,
                "{}: {revenue} vs {expected}",
                session.name()
            );
            assert_eq!(
                session.backend().context().queue().flush_count(),
                1,
                "{}: Q6 must keep its single-flush bound under concurrency",
                session.name()
            );
        }

        // Cross-context recycling: a third session on the same device runs
        // the same plan; its result buffers come from the pool the first
        // two sessions filled — hits recorded by a Memory Manager that
        // never released a buffer itself are cross-context by construction.
        let c = Session::ocelot(&shared);
        let before = shared.pool().stats();
        let third = c.run(&plan, db.catalog()).unwrap();
        assert_eq!(third, *results[0].as_ref().unwrap());
        assert_eq!(c.backend().context().queue().flush_count(), 1);
        let hits = c.backend().context().memory().stats().recycle_hits;
        assert!(hits > 0, "the third session must allocate from the shared pool");
        let delta_cross = shared.pool().stats().cross_context_hits - before.cross_context_hits;
        assert!(
            delta_cross >= hits,
            "all {hits} hits are cross-context (pool stats moved by {delta_cross})"
        );
    }
}

#[cfg(test)]
mod column_cache {
    use crate::assert_results_close;
    use ocelot_core::SharedDevice;
    use ocelot_engine::Session;
    use ocelot_tpch::{run_query, QueryResult, TpchConfig, TpchDb};
    use proptest::collection;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One shared dataset for the pressure suites (generation is the
    /// expensive part; the suites only read it).
    fn db() -> &'static TpchDb {
        static DB: OnceLock<TpchDb> = OnceLock::new();
        DB.get_or_init(|| TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 31 }))
    }

    /// MS reference results, computed once per query id.
    fn reference(query: u32) -> &'static QueryResult {
        static REFS: OnceLock<Vec<(u32, QueryResult)>> = OnceLock::new();
        let refs = REFS.get_or_init(|| {
            let session = Session::monet_seq();
            [3u32, 4, 6, 12]
                .into_iter()
                .map(|q| (q, run_query(&session, db(), q).unwrap()))
                .collect()
        });
        &refs.iter().find(|(q, _)| *q == query).unwrap().1
    }

    /// A device-memory budget small enough to force eviction on the
    /// query stream's working set but comfortably above the largest
    /// single-plan pinned set (the stream must *complete*, via the
    /// restart protocol, not fail).
    const PRESSURE_BUDGET: usize = 512 * 1024;

    /// The GPU equivalent: the simulated discrete device needs room for
    /// fixed per-device kernel scratch (the radix sort's histogram is
    /// `256 radixes x total work-items` ≈ 2 MiB alone), so pressure is
    /// applied with a higher device budget plus a tight cache budget.
    const GPU_PRESSURE_BUDGET: usize = 6 * 1024 * 1024;

    #[test]
    fn warm_cache_rerun_uploads_zero_base_column_bytes() {
        // The PR 4 acceptance scenario: a session stream re-running Q6 on
        // a warm ColumnCache re-uploads nothing — proven with the queue's
        // transfer accounting on the discrete device, where every
        // host→device byte is charged.
        let db = db();
        let shared = SharedDevice::gpu();
        let cold = Session::ocelot(&shared);
        let first = run_query(&cold, db, 6).unwrap();
        assert_results_close("cold q6 (gpu)", &first, reference(6));
        let cold_stats = shared.cache().stats();
        assert!(cold_stats.misses >= 4, "q6 binds four lineitem columns: {cold_stats:?}");
        assert!(cold_stats.bytes_uploaded > 0);
        assert!(cold.backend().context().queue().total_stats().bytes_to_device > 0);

        for rerun in 0..3 {
            let warm = Session::ocelot(&shared);
            let result = run_query(&warm, db, 6).unwrap();
            assert_results_close("warm q6 (gpu)", &result, reference(6));
            assert_eq!(
                warm.backend().context().queue().total_stats().bytes_to_device,
                0,
                "warm rerun {rerun} must not upload any base-column bytes"
            );
        }
        let warm_stats = shared.cache().stats();
        assert_eq!(warm_stats.misses, cold_stats.misses, "no upload after the cold run");
        assert_eq!(warm_stats.bytes_uploaded, cold_stats.bytes_uploaded);
        assert!(warm_stats.hits >= 12, "three warm reruns hit the cache: {warm_stats:?}");
    }

    #[test]
    fn session_cache_handles_are_shared_and_observable() {
        let shared = SharedDevice::cpu();
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        let cache_a = a.column_cache().expect("shared-device sessions expose the cache");
        let cache_b = b.column_cache().unwrap();
        assert!(std::sync::Arc::ptr_eq(cache_a, cache_b), "one cache per device");
        drop(run_query(&a, db(), 6).unwrap());
        assert!(cache_b.stats().misses > 0, "b observes a's binds through the shared handle");
    }

    #[test]
    fn tiny_budget_stream_completes_via_eviction_and_restart() {
        // The second PR 4 acceptance scenario: a stream whose working set
        // exceeds the device budget completes *correctly* — evicting
        // resident columns and restarting OOM'd nodes — with eviction
        // counters > 0.
        let db = db();
        let shared = SharedDevice::cpu().with_memory_budget(PRESSURE_BUDGET);
        let mut reclaims = 0;
        for &query in &[6, 3, 4, 12, 6, 3, 12] {
            let session = Session::ocelot(&shared);
            let result = match run_query(&session, db, query) {
                Ok(r) => r,
                Err(e) => panic!(
                    "q{query} failed: {e:?}; cache={:?} used={} reclaims_this={} ",
                    shared.cache().stats(),
                    shared.device().memory().used(),
                    session.backend().reclaim_count(),
                ),
            };
            assert_results_close("pressured stream", &result, reference(query));
            reclaims += session.backend().reclaim_count();
        }
        let stats = shared.cache().stats();
        assert!(stats.evictions > 0, "the budget must force eviction: {stats:?}");
        assert!(stats.hits > 0, "re-used columns still hit while resident: {stats:?}");
        assert!(
            reclaims > 0,
            "at least one node must go through the OOM-restart protocol \
             (evictions {}, reclaims {reclaims})",
            stats.evictions
        );
    }

    proptest! {
        /// Results under an artificially tiny device budget (forced
        /// eviction + restarts) equal results with an unbounded budget,
        /// across all four backends.
        #[test]
        fn pressured_results_equal_unbounded(
            extra_64k in 0usize..5,
            picks in collection::vec(0usize..4, 2..5),
        ) {
            let queries: Vec<u32> = picks.iter().map(|i| [3u32, 4, 6, 12][*i]).collect();
            let db = db();
            // Budgets between ~65% and ~95% of the working set: all force
            // eviction, the tightest also force node restarts. The GPU
            // floor is higher because its radix-sort scratch alone is
            // 2 MiB (256 radixes x 2 048 work-items); its column budget is
            // pinned below the working set so eviction is still forced.
            let budget = PRESSURE_BUDGET + extra_64k * 64 * 1024;
            let cpu = SharedDevice::cpu().with_memory_budget(budget);
            let gpu = SharedDevice::gpu()
                .with_memory_budget(GPU_PRESSURE_BUDGET + extra_64k * 64 * 1024)
                .with_cache_budget(PRESSURE_BUDGET);
            let mp = Session::monet_par();
            for &query in &queries {
                // Unbounded reference (MS) vs the other three backends,
                // the Ocelot pair running under the tiny budget.
                let expected = reference(query);
                let mp_result = run_query(&mp, db, query).unwrap();
                assert_results_close("MP", &mp_result, expected);
                for shared in [&cpu, &gpu] {
                    let session = Session::ocelot(shared);
                    let result = run_query(&session, db, query).unwrap();
                    assert_results_close(session.name(), &result, expected);
                }
            }
        }
    }
}

#[cfg(test)]
mod query_dsl {
    use crate::assert_results_close;
    use ocelot_engine::{OcelotBackend, RewriteConfig, Session};
    use ocelot_tpch::{
        q3_query, run_query, run_query_reference, QueryResult, TpchConfig, TpchDb,
        PORTED_QUERY_IDS, REFERENCE_QUERY_IDS,
    };
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn db() -> &'static TpchDb {
        static DB: OnceLock<TpchDb> = OnceLock::new();
        DB.get_or_init(|| TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 37 }))
    }

    /// The per-query oracle: the hand-built physical plan (run on MS) where
    /// one exists, otherwise the MS DSL result — itself verified against a
    /// host-side recompute in `ocelot-tpch`'s unit suite, so the chain
    /// still grounds every backend in host arithmetic.
    fn oracle(query: u32) -> &'static QueryResult {
        static ORACLES: OnceLock<Vec<(u32, QueryResult)>> = OnceLock::new();
        let oracles = ORACLES.get_or_init(|| {
            let ms = Session::monet_seq();
            PORTED_QUERY_IDS
                .iter()
                .map(|&q| {
                    let result = if REFERENCE_QUERY_IDS.contains(&q) {
                        run_query_reference(&ms, db(), q).unwrap()
                    } else {
                        run_query(&ms, db(), q).unwrap()
                    };
                    (q, result)
                })
                .collect()
        });
        &oracles.iter().find(|(q, _)| *q == query).unwrap().1
    }

    proptest! {
        /// The tentpole's acceptance property: for every ported query, the
        /// DSL-lowered plan produces results reference-equal to its oracle
        /// on a randomly drawn backend (all four covered across the case
        /// budget).
        #[test]
        fn dsl_lowered_plans_match_their_oracles_on_every_backend(
            query_pick in 0usize..8,
            backend_pick in 0usize..4,
        ) {
            let query = PORTED_QUERY_IDS[query_pick];
            let expected = oracle(query);
            let label;
            let result = match backend_pick {
                0 => {
                    label = "MS";
                    run_query(&Session::monet_seq(), db(), query).unwrap()
                }
                1 => {
                    label = "MP";
                    run_query(&Session::monet_par(), db(), query).unwrap()
                }
                2 => {
                    label = "Ocelot CPU";
                    run_query(&Session::new(OcelotBackend::cpu()), db(), query).unwrap()
                }
                _ => {
                    label = "Ocelot GPU";
                    run_query(&Session::new(OcelotBackend::gpu()), db(), query).unwrap()
                }
            };
            assert_results_close(label, &result, expected);
        }
    }

    #[test]
    fn naive_lowering_is_semantically_equal_and_physically_bigger() {
        // Ablation safety net for bench_pr5: turning every rewrite rule off
        // must only change the physical plan (more binds, later filters),
        // never the result.
        let db = db();
        let q3 = q3_query(db);
        let session = Session::new(OcelotBackend::cpu());
        let optimized_plan = q3.lower(db.catalog()).unwrap();
        let naive_plan = q3.lower_with(db.catalog(), &RewriteConfig::naive()).unwrap();
        assert!(
            naive_plan.len() > optimized_plan.len(),
            "naive lowering materialises strictly more ({} vs {} nodes)",
            naive_plan.len(),
            optimized_plan.len()
        );
        let to_rows = |values: Vec<ocelot_engine::QueryValue>| -> Vec<Vec<f64>> {
            let columns: Vec<Vec<f64>> = values
                .iter()
                .map(|v| match v {
                    ocelot_engine::QueryValue::Scalar(s) => vec![*s as f64],
                    ocelot_engine::QueryValue::IntColumn(v) => {
                        v.iter().map(|x| *x as f64).collect()
                    }
                    ocelot_engine::QueryValue::FloatColumn(v) => {
                        v.iter().map(|x| *x as f64).collect()
                    }
                    ocelot_engine::QueryValue::OidColumn(v) => {
                        v.iter().map(|x| *x as f64).collect()
                    }
                })
                .collect();
            let mut rows: Vec<Vec<f64>> =
                (0..columns[0].len()).map(|r| columns.iter().map(|c| c[r]).collect()).collect();
            rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
            rows
        };
        let optimized = to_rows(session.run(&optimized_plan, db.catalog()).unwrap());
        let naive = to_rows(session.run(&naive_plan, db.catalog()).unwrap());
        assert_eq!(optimized.len(), naive.len());
        for (a, b) in optimized.iter().zip(&naive) {
            for (x, y) in a.iter().zip(b) {
                assert!(
                    (x - y).abs() <= 1e-3 * x.abs().max(y.abs()).max(1.0),
                    "naive and optimized diverged: {x} vs {y}"
                );
            }
        }
    }
}

#[cfg(test)]
mod recovery {
    //! PR 6 chaos and determinism suites for the unified recovery protocol
    //! (`ocelot_engine::plan` module docs): seeded transient faults are
    //! retried invisibly, scripted device losses heal through failover,
    //! budget exhaustion surfaces as the typed quarantine error — and under
    //! all of it, results are reference-equal or absent, never wrong.

    use ocelot_core::SharedDevice;
    use ocelot_engine::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_engine::plan::Plan;
    use ocelot_engine::{
        PlanError, QueryJob, QueryValue, RecoveryEvent, RecoveryStats, Scheduler, Session,
    };
    use ocelot_kernel::{FaultPlan, FaultSpec};
    use ocelot_storage::{Bat, Catalog, Table};
    use ocelot_tpch::{q1_query, q3_query, q6_query, TpchConfig, TpchDb};
    use proptest::collection;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn db() -> &'static TpchDb {
        static DB: OnceLock<TpchDb> = OnceLock::new();
        DB.get_or_init(|| TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 41 }))
    }

    /// The chaos stream: three DSL-lowered TPC-H plans (so each carries its
    /// logical source and failover exercises the re-lowering path).
    fn plans() -> &'static Vec<Plan> {
        static PLANS: OnceLock<Vec<Plan>> = OnceLock::new();
        PLANS.get_or_init(|| {
            [q1_query(db()), q3_query(db()), q6_query(db())]
                .iter()
                .map(|query| query.lower(db().catalog()).unwrap())
                .collect()
        })
    }

    /// Fault-free references, computed once on fresh CPU devices — the same
    /// device kind every chaos run executes on (or fails over to), so the
    /// PR 3 same-device determinism property makes equality exact.
    fn reference() -> &'static Vec<Vec<QueryValue>> {
        static REFERENCE: OnceLock<Vec<Vec<QueryValue>>> = OnceLock::new();
        REFERENCE.get_or_init(|| {
            plans()
                .iter()
                .map(|plan| {
                    Session::ocelot(&SharedDevice::cpu()).run(plan, db().catalog()).unwrap()
                })
                .collect()
        })
    }

    proptest! {
        /// The PR 6 acceptance property: a query stream under seeded
        /// transient faults plus a scripted mid-stream device loss either
        /// completes reference-equal or fails with the typed quarantine
        /// error — never a hang, a panic or a wrong answer — and the lost
        /// device's plan always completes via failover.
        #[test]
        fn chaos_streams_complete_reference_equal_or_fail_typed(
            seed in 0u64..1 << 16,
            rate_pick in 0usize..3,
            lost_at in 1u64..6,
        ) {
            let rate = [0.0, 0.01, 0.05][rate_pick];
            let catalog = db().catalog();

            // Q1 and Q6 share one flaky CPU device; Q3 runs on a GPU device
            // scripted to drop off the bus mid-plan.
            let flaky = SharedDevice::cpu();
            flaky.device().install_fault_plan(FaultPlan::seeded(seed, rate, 0.0));
            let lost = SharedDevice::gpu();
            lost.device().install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost {
                at_op: lost_at,
            }]));

            let sessions =
                [Session::ocelot(&flaky), Session::ocelot(&lost), Session::ocelot(&flaky)];
            let jobs: Vec<QueryJob<'_, _>> = plans()
                .iter()
                .zip(&sessions)
                .map(|(plan, session)| QueryJob { session, plan, catalog })
                .collect();
            let fallback = Session::ocelot(&SharedDevice::cpu());
            let (results, stats) =
                Scheduler::new().with_in_flight(2).run_with_fallback(&jobs, &fallback);

            for (index, result) in results.iter().enumerate() {
                match result {
                    Ok(values) => prop_assert_eq!(
                        values,
                        &reference()[index],
                        "slot {} must be reference-equal",
                        index
                    ),
                    // Budget exhaustion quarantines the plan — typed, never
                    // a panic or a silent wrong answer.
                    Err(PlanError::Faulted { .. }) => {}
                    Err(other) => prop_assert!(false, "untyped failure: {other:?}"),
                }
            }
            prop_assert!(results[1].is_ok(), "device loss must heal via failover");
            prop_assert!(stats.failovers > 0, "the loss must show up in the stats");
            prop_assert_eq!(
                stats.quarantines,
                results.iter().filter(|r| r.is_err()).count() as u64,
                "every surviving error is a quarantine"
            );
        }
    }

    #[test]
    fn recovery_traces_are_reproducible_for_a_seed() {
        // Same seed ⇒ same recovery decisions: two fresh devices replaying
        // one seeded fault schedule take the exact same retry/backoff trace
        // (fresh devices matter — a warm column cache would skip uploads
        // and shift the operation sequence).
        let catalog = db().catalog();
        let plan = &plans()[1]; // Q3: enough device ops to draw real faults.
        let run = || {
            let shared = SharedDevice::cpu();
            shared.device().install_fault_plan(FaultPlan::seeded(11, 0.05, 0.0));
            let session = Session::ocelot(&shared);
            let values = session.run(plan, catalog).unwrap();
            (values, session.recovery_stats(), session.recovery_trace())
        };
        let (values_a, stats_a, trace_a) = run();
        let (values_b, stats_b, trace_b) = run();
        assert!(stats_a.retries > 0, "the chosen seed must exercise retries: {stats_a:?}");
        assert!(
            trace_a.iter().any(|e| matches!(e, RecoveryEvent::TransientRetry { .. })),
            "retries must be traced"
        );
        assert_eq!(stats_a, stats_b, "same seed, same counters");
        assert_eq!(trace_a, trace_b, "same seed, same ordered recovery trace");
        assert_eq!(values_a, values_b);
        assert_eq!(&values_a, &reference()[1], "retried runs stay reference-equal");
    }

    fn toy_catalog(keys: &[i32], values: &[f32]) -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", keys.to_vec()).into_ref())
            .with_column("b", Bat::from_f32("b", values.to_vec()).into_ref());
        catalog.add_table(table);
        catalog
    }

    proptest! {
        /// The PR 3 interleaving property survives fault injection: with a
        /// nonzero transient rate on the shared device, interleaved results
        /// still equal the fault-free sequential reference — transient
        /// faults fire before the operation enqueues, so a retried node
        /// recomputes exactly the same values.
        #[test]
        fn interleaved_equals_sequential_under_transient_faults(
            raw in collection::vec(-1_000i32..1_000, 50..200),
            bounds in collection::vec((-50i32..50, 0i32..80), 2..4),
            seed in 0u64..1 << 16,
        ) {
            let keys: Vec<i32> = raw.iter().map(|v| v % 100).collect();
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.125).collect();
            let catalog = toy_catalog(&keys, &values);
            let plans: Vec<Plan> = bounds
                .iter()
                .map(|(low, width)| {
                    compile(&rewrite_for_ocelot(&example_plan(
                        "t", "a", "b", *low, *low + *width,
                    )))
                    .unwrap()
                })
                .collect();

            // Fault-free sequential reference, each plan on a fresh device.
            let sequential: Vec<Vec<QueryValue>> = plans
                .iter()
                .map(|plan| {
                    Session::ocelot(&SharedDevice::cpu()).run(plan, &catalog).unwrap()
                })
                .collect();

            // Interleaved on ONE shared device with a ~2% transient rate.
            let shared = SharedDevice::cpu();
            shared.device().install_fault_plan(FaultPlan::seeded(seed, 0.02, 0.0));
            let sessions: Vec<Session<_>> =
                plans.iter().map(|_| Session::ocelot(&shared)).collect();
            let jobs: Vec<QueryJob<'_, _>> = plans
                .iter()
                .zip(&sessions)
                .map(|(plan, session)| QueryJob { session, plan, catalog: &catalog })
                .collect();
            let fallback = Session::ocelot(&SharedDevice::cpu());
            let (results, stats) =
                Scheduler::new().with_in_flight(2).run_with_fallback(&jobs, &fallback);
            let _: RecoveryStats = stats; // retries vary by seed; 0 is legal
            for (index, result) in results.iter().enumerate() {
                prop_assert_eq!(
                    result.as_ref().unwrap(),
                    &sequential[index],
                    "plan {} diverged under interleaving with faults (seed {})",
                    index,
                    seed
                );
            }
        }
    }
}

#[cfg(test)]
mod deferred_vs_eager {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::reduce;
    use ocelot_core::OcelotContext;
    use ocelot_engine::{Backend, MonetParBackend, MonetSeqBackend, OcelotBackend};
    use proptest::collection;
    use proptest::prelude::*;

    fn ocelot_contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    fn check_backend<B: Backend>(backend: &B, values: &[f32], expected: (f32, f32, f32)) {
        let col = backend.lift_f32(values.to_vec());
        let sum = backend.sum_f32(&col);
        prop_assert!(
            (sum - expected.0).abs() / expected.0.abs().max(1.0) < 1e-3,
            "{}: {} vs {}",
            backend.name(),
            sum,
            expected.0
        );
        prop_assert_eq!(backend.min_f32(&col), expected.1, "{}", backend.name());
        prop_assert_eq!(backend.max_f32(&col), expected.2, "{}", backend.name());
        // The deferred one-element column path agrees bit-exactly with the
        // eager scalar path of the same backend.
        let deferred = backend.to_f32(&backend.sum_scalar_f32(&col));
        prop_assert_eq!(deferred[0].to_bits(), sum.to_bits(), "{}", backend.name());
    }

    proptest! {
        #[test]
        fn devscalar_integer_reductions_equal_eager_readbacks(
            values in collection::vec(-10_000i32..10_000, 1..400),
        ) {
            let sum: i32 = values.iter().fold(0i32, |a, v| a.wrapping_add(*v));
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                prop_assert_eq!(reduce::sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), sum);
                prop_assert_eq!(reduce::min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), min);
                prop_assert_eq!(reduce::max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), max);
            }
        }

        #[test]
        fn devscalar_selected_counts_equal_eager_readbacks(
            values in collection::vec(0i32..100, 0..300),
        ) {
            let expected = values.iter().filter(|v| (25..=75).contains(*v)).count() as u32;
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                let bitmap = select::select_range_i32(&ctx, &col, 25, 75).unwrap();
                let count = select::selected_count(&ctx, &bitmap).unwrap();
                prop_assert_eq!(count.get(&ctx).unwrap(), expected);
                // Deferred lengths resolve to the same cardinality.
                let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
                prop_assert_eq!(oids.len(&ctx).unwrap(), expected as usize);
            }
        }

        #[test]
        fn backend_aggregates_agree_across_all_four_backends(
            raw in collection::vec(-500i32..500, 1..300),
        ) {
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.25).collect();
            let reference = MonetSeqBackend::new();
            let expected = (
                reference.sum_f32(&reference.lift_f32(values.clone())),
                reference.min_f32(&reference.lift_f32(values.clone())),
                reference.max_f32(&reference.lift_f32(values.clone())),
            );
            check_backend(&MonetParBackend::new(), &values, expected);
            check_backend(&OcelotBackend::cpu(), &values, expected);
            check_backend(&OcelotBackend::cpu_sequential(), &values, expected);
            check_backend(&OcelotBackend::gpu(), &values, expected);
        }
    }
}

#[cfg(test)]
mod serving {
    //! PR 7 serving-layer suites: parameter binding is semantically
    //! invisible (a bound shape equals the literal-inlined query on every
    //! backend, cold and cached), a cache hit re-lowers node for node, the
    //! device-wide cache flushes on scripted device loss, a re-generated
    //! catalog never reuses entries, and the serving scheduler's
    //! backpressure rejects typed while every admitted job completes
    //! reference-equal in per-tenant submission order.

    use ocelot_core::SharedDevice;
    use ocelot_engine::{
        Lane, OcelotBackend, ParamValue, PlanCache, PlanError, QueryJob, ServeJob, ServeScheduler,
        Session,
    };
    use ocelot_kernel::{FaultPlan, FaultSpec};
    use ocelot_storage::types::date_to_days;
    use ocelot_tpch::{
        q1_params, q1_query_p, q3_params, q3_query_p, q6_params, q6_query, q6_query_p, TpchConfig,
        TpchDb,
    };
    use proptest::prelude::*;
    use std::sync::OnceLock;

    fn db() -> &'static TpchDb {
        static DB: OnceLock<TpchDb> = OnceLock::new();
        DB.get_or_init(|| TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 53 }))
    }

    proptest! {
        /// The tentpole's semantic property: for randomly drawn parameter
        /// values, executing a prepared shape through the plan cache —
        /// cold (miss) and again warm (hit) — equals running the
        /// literal-inlined query compiled from scratch, on a randomly
        /// drawn backend (all four covered across the case budget).
        #[test]
        fn served_shapes_equal_literal_queries_on_every_backend(
            query_pick in 0usize..3,
            backend_pick in 0usize..4,
            year in 1993i32..1998,
            month in 1u32..13,
            day in 1u32..28,
            band_lo in 1i32..8,
            quantity_q in 30i32..70,
        ) {
            let db = db();
            let (shape, params) = match query_pick {
                0 => (q1_query_p(db), vec![ParamValue::from(date_to_days(year, month, day))]),
                1 => (q3_query_p(db), vec![
                    date_to_days(year, month, day).into(),
                    db.code("customer", "c_mktsegment", "BUILDING").into(),
                ]),
                _ => (q6_query_p(db), vec![
                    date_to_days(year, 1, 1).into(),
                    (date_to_days(year + 1, 1, 1) - 1).into(),
                    (band_lo as f32 * 0.01 - 0.001).into(),
                    ((band_lo + 2) as f32 * 0.01 + 0.001).into(),
                    (quantity_q as f32 * 0.5).into(),
                ]),
            };
            let catalog = db.catalog();
            let literal = shape.bind(&params).unwrap();
            let cache = PlanCache::new();
            fn check<B: ocelot_engine::Backend>(
                session: &Session<B>,
                cache: &PlanCache,
                shape: &ocelot_engine::Query,
                literal: &ocelot_engine::Query,
                params: &[ParamValue],
                catalog: &ocelot_storage::Catalog,
            ) {
                let expected = literal.run(session, catalog).unwrap();
                let cold = cache.execute(session, shape, params, catalog).unwrap();
                let warm = cache.execute(session, shape, params, catalog).unwrap();
                assert_eq!(cold, expected, "cold compile diverged on {}", session.name());
                assert_eq!(warm, expected, "cache hit diverged on {}", session.name());
            }
            match backend_pick {
                0 => check(&Session::monet_seq(), &cache, &shape, &literal, &params, catalog),
                1 => check(&Session::monet_par(), &cache, &shape, &literal, &params, catalog),
                2 => check(
                    &Session::new(OcelotBackend::cpu()),
                    &cache, &shape, &literal, &params, catalog,
                ),
                _ => check(
                    &Session::new(OcelotBackend::gpu()),
                    &cache, &shape, &literal, &params, catalog,
                ),
            }
            prop_assert_eq!(cache.stats().hits, 1);
            prop_assert_eq!(cache.stats().misses, 1);
        }
    }

    #[test]
    fn cache_hits_relower_tpch_shapes_node_for_node() {
        // The compiled-plan cache promise on the real workload shapes: a
        // hit (cached optimized tree + snapshotted statistics) lowers the
        // exact node sequence the cold compile produced.
        let db = db();
        let catalog = db.catalog();
        let cases: [(ocelot_engine::Query, Vec<ParamValue>); 3] = [
            (q1_query_p(db), q1_params()),
            (q3_query_p(db), q3_params(db)),
            (q6_query_p(db), q6_params()),
        ];
        let cache = PlanCache::new();
        for (shape, params) in &cases {
            let cold = cache.plan(shape, params, catalog).unwrap();
            let warm = cache.plan(shape, params, catalog).unwrap();
            assert_eq!(cold.nodes(), warm.nodes(), "hit must re-lower node for node");
        }
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn device_loss_invalidates_the_device_wide_plan_cache() {
        // Satellite (a): the cache handed out by `PlanCache::on` is one
        // per device, and the PR 6 recovery protocol's `on_device_lost`
        // bump flushes it — the lookup after a scripted loss recompiles.
        let db = db();
        let catalog = db.catalog();
        let lost = SharedDevice::gpu();
        let cache = PlanCache::on(&lost);
        assert!(
            std::sync::Arc::ptr_eq(&cache, &PlanCache::on(&lost)),
            "one cache per device, shared by every session"
        );

        let shape = q6_query_p(db);
        let params = q6_params();
        let plan = cache.plan(&shape, &params, catalog).unwrap();
        assert_eq!(cache.stats().misses, 1);

        let reference = Session::ocelot(&SharedDevice::cpu()).run(&plan, catalog).unwrap();
        lost.device()
            .install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 3 }]));
        let session = Session::ocelot(&lost).with_fallback(Session::ocelot(&SharedDevice::cpu()));
        let values = session.run(&plan, catalog).unwrap();
        assert_eq!(values, reference, "failover of a cached plan stays reference-equal");
        assert_eq!(session.recovery_stats().failovers, 1);

        // The loss bumped the slot epoch; the next lookup flushes.
        cache.plan(&shape, &params, catalog).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1, "the loss must flush the cache");
        assert_eq!((stats.hits, stats.misses), (0, 2), "post-loss lookup recompiles");
    }

    #[test]
    fn regenerated_databases_never_reuse_cached_shapes() {
        // Satellite (b): same config, fresh generation — the plan-cache
        // key moves with `Catalog::generation`, so stale selectivity
        // snapshots of the old data can't leak into the new catalog.
        let config = TpchConfig { scale_factor: 0.002, seed: 53 };
        let first = TpchDb::generate(config.clone());
        let second = TpchDb::generate(config);
        assert_ne!(first.catalog().generation(), second.catalog().generation());

        let cache = PlanCache::new();
        let params = q6_params();
        cache.plan(&q6_query_p(&first), &params, first.catalog()).unwrap();
        cache.plan(&q6_query_p(&second), &params, second.catalog()).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2), "a regenerated catalog is a cold shape");
    }

    #[test]
    fn overload_rejects_typed_and_admitted_jobs_complete_in_tenant_order() {
        // The backpressure acceptance criterion: a greedy tenant beyond
        // the bounded queue is rejected with the typed `Overloaded` error,
        // every admitted job completes reference-equal, and each tenant's
        // completions land in its submission order.
        let db = db();
        let catalog = db.catalog();
        let plan = q6_query(db).lower(catalog).unwrap();
        let reference = Session::monet_seq().run(&plan, catalog).unwrap();

        let greedy = Session::monet_seq();
        let polite = Session::monet_seq();
        // Tenant 0 submits twice the queue capacity; tenant 1 submits two.
        let capacity = 3;
        let jobs: Vec<ServeJob<'_, _>> = (0..2 * capacity)
            .map(|_| ServeJob {
                job: QueryJob { session: &greedy, plan: &plan, catalog },
                tenant: 0,
                lane: Lane::Batch,
            })
            .chain((0..2).map(|_| ServeJob {
                job: QueryJob { session: &polite, plan: &plan, catalog },
                tenant: 1,
                lane: Lane::Batch,
            }))
            .collect();
        let outcome =
            ServeScheduler::new().with_in_flight(1).with_queue_capacity(capacity).run(&jobs);

        assert_eq!(outcome.stats.tenant(0).rejected, capacity, "overflow sheds typed");
        assert_eq!(outcome.stats.tenant(0).completed, capacity);
        assert_eq!(outcome.stats.tenant(1).completed, 2, "the polite tenant is untouched");
        for (index, result) in outcome.results.iter().enumerate() {
            match result {
                Ok(values) => assert_eq!(values, &reference, "slot {index}"),
                Err(PlanError::Overloaded { queued, capacity }) => {
                    assert_eq!((*queued, *capacity), (3, 3), "slot {index}");
                    assert!(index < 2 * 3, "only the greedy tenant overflows");
                }
                Err(other) => panic!("untyped failure in slot {index}: {other:?}"),
            }
        }
        // Per-tenant completion order == submission order.
        for tenant in [0usize, 1] {
            let completions: Vec<usize> = outcome
                .stats
                .completion_order
                .iter()
                .copied()
                .filter(|&index| jobs[index].tenant == tenant)
                .collect();
            assert!(
                completions.windows(2).all(|w| w[0] < w[1]),
                "tenant {tenant} completions out of submission order: {completions:?}"
            );
        }
    }
}

#[cfg(test)]
mod streaming_dbgen {
    use ocelot_storage::Table;
    use ocelot_tpch::{chunked_tables, chunked_tables_by_rows, TpchConfig, TpchDb};

    fn assert_tables_equal(label: &str, a: &Table, b: &Table) {
        assert_eq!(a.name(), b.name(), "{label}");
        assert_eq!(a.row_count(), b.row_count(), "{label}: {} row count", a.name());
        assert_eq!(a.column_names(), b.column_names(), "{label}: {} columns", a.name());
        for (name, col_a) in a.columns() {
            let col_b = b.column(name).unwrap();
            if let (Some(x), Some(y)) = (col_a.as_i32(), col_b.as_i32()) {
                assert_eq!(x, y, "{label}: {}.{name} diverged", a.name());
            } else {
                let (x, y) = (col_a.as_f32().unwrap(), col_b.as_f32().unwrap());
                assert_eq!(x, y, "{label}: {}.{name} diverged", a.name());
            }
        }
    }

    /// The chunked generator is seed-deterministic and chunk-count
    /// invariant: one monolithic chunk, two chunks and seven chunks all
    /// produce identical rows for every table — the per-row counter-based
    /// seeding means a chunk boundary can never shift a random draw.
    #[test]
    fn chunked_equals_monolithic_for_every_table() {
        let cfg = TpchConfig { scale_factor: 0.01, seed: 42 };
        let monolithic: Vec<Table> =
            chunked_tables(&cfg, 1).into_iter().map(|t| t.collect()).collect();
        for chunks in [2usize, 7] {
            let chunked = chunked_tables(&cfg, chunks);
            assert_eq!(chunked.len(), monolithic.len());
            for (expected, table) in monolithic.iter().zip(chunked) {
                assert!(table.chunk_count() >= 1);
                let collected = table.collect();
                assert_tables_equal(
                    &format!("{chunks} chunks vs monolithic"),
                    &collected,
                    expected,
                );
            }
        }
    }

    /// `TpchDb::generate` (which materialises through the default chunk
    /// size) agrees with the single-chunk generator row for row.
    #[test]
    fn generate_matches_single_chunk_collect() {
        let cfg = TpchConfig { scale_factor: 0.01, seed: 23 };
        let db = TpchDb::generate(cfg.clone());
        for table in chunked_tables(&cfg, 1) {
            let expected = table.collect();
            let got = db.catalog().table(table.name()).unwrap();
            assert_tables_equal("generate vs 1-chunk", got, &expected);
        }
    }

    /// The out-of-core acceptance property: scale factor 1 streams through
    /// reusable row groups whose peak footprint stays far below even a
    /// single whole column of the table, so no column is ever materialised
    /// on the host.
    #[test]
    fn sf1_streams_without_materializing_a_column() {
        let cfg = TpchConfig { scale_factor: 1.0, seed: 7 };
        let tables = chunked_tables_by_rows(&cfg, 1 << 16);
        for name in ["orders", "lineitem"] {
            let table = tables.iter().find(|t| t.name() == name).unwrap();
            assert!(table.chunk_count() > 1, "{name} must stream in many chunks");
            let whole_column_bytes = table.rows() * 4;
            let mut peak_bytes = 0usize;
            let mut max_chunk_rows = 0usize;
            let rows = table.scan(|_, rg| {
                peak_bytes = peak_bytes.max(rg.capacity_bytes());
                max_chunk_rows = max_chunk_rows.max(rg.rows());
            });
            assert_eq!(rows, table.rows(), "{name} advertises its row count");
            assert!(
                peak_bytes < whole_column_bytes,
                "{name}: peak row group ({peak_bytes} B) must stay below one whole \
                 column ({whole_column_bytes} B)"
            );
            assert!(max_chunk_rows < rows / 2, "{name} never holds half the table");
        }
        let lineitem = tables.iter().find(|t| t.name() == "lineitem").unwrap();
        assert!(lineitem.rows() > 5_500_000, "sf 1 lineitem is ~6M rows");
    }

    /// Chunked registration in the catalog streams: the chunked table is
    /// scannable and only materialises on request.
    #[test]
    fn register_chunked_defers_materialization() {
        let cfg = TpchConfig { scale_factor: 0.01, seed: 42 };
        let mut catalog = ocelot_storage::Catalog::new();
        ocelot_tpch::register_chunked(&mut catalog, &cfg, 4);
        assert!(catalog.table("lineitem").is_none(), "nothing materialised yet");
        let chunked_rows = catalog.chunked_table("lineitem").unwrap().rows();
        assert!(chunked_rows > 0);
        assert!(catalog.materialize_chunked("lineitem"));
        assert_eq!(catalog.table("lineitem").unwrap().row_count(), chunked_rows);
    }
}

#[cfg(test)]
mod partitioned_join {
    use ocelot_core::{partitioned_pkfk_join, OcelotContext, PartitionedJoinConfig};
    use ocelot_engine::{Backend, MonetParBackend, MonetSeqBackend, OcelotBackend};
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// Host oracle: unique-key hash join in probe-row order.
    fn reference(fk: &[i32], pk: &[i32]) -> (Vec<u32>, Vec<u32>) {
        let index: HashMap<i32, u32> = pk.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let pairs: Vec<(u32, u32)> = fk
            .iter()
            .enumerate()
            .filter_map(|(i, k)| index.get(k).map(|p| (i as u32, *p)))
            .collect();
        (pairs.iter().map(|(f, _)| *f).collect(), pairs.iter().map(|(_, p)| *p).collect())
    }

    fn check_backend<B: Backend>(backend: &B, fk: &[i32], pk: &[i32], ndv_hint: usize) {
        let fkc = backend.lift_i32(fk.to_vec());
        let pkc = backend.lift_i32(pk.to_vec());
        let (in_fk, in_pk) = backend.pkfk_join(&fkc, &pkc);
        let (part_fk, part_pk) = backend.pkfk_join_partitioned(&fkc, &pkc, ndv_hint);
        let (exp_fk, exp_pk) = reference(fk, pk);
        assert_eq!(backend.to_oids(&in_fk), exp_fk, "{}: in-memory fk oids", backend.name());
        assert_eq!(backend.to_oids(&in_pk), exp_pk, "{}: in-memory pk oids", backend.name());
        assert_eq!(backend.to_oids(&part_fk), exp_fk, "{}: partitioned fk oids", backend.name());
        assert_eq!(backend.to_oids(&part_pk), exp_pk, "{}: partitioned pk oids", backend.name());
    }

    /// Key-distribution strategies: uniform, skewed (most probe rows hit
    /// one key) and sparse (many probe misses).
    fn probe_keys(n: usize, build_n: usize, mode: u8, seed: u64) -> Vec<i32> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let r = next();
                match mode {
                    0 => (r % build_n.max(1) as u64) as i32,
                    1 if r % 10 != 0 => (build_n / 2) as i32,
                    1 => (r % build_n.max(1) as u64) as i32,
                    _ => (r % (build_n.max(1) as u64 * 3)) as i32,
                }
            })
            .collect()
    }

    proptest! {
        /// The satellite property: the partitioned join equals the
        /// in-memory join (and the host oracle) on all four evaluated
        /// backends, across uniform, skewed and sparse key distributions
        /// and deliberately wrong ndv hints.
        #[test]
        fn partitioned_equals_in_memory_on_all_backends(
            build_n in 1usize..300,
            probe_n in 0usize..1200,
            mode in 0u8..3,
            seed in 1u64..u64::MAX,
            ndv_hint in 1usize..100_000,
        ) {
            let pk: Vec<i32> = (0..build_n as i32).collect();
            let fk = probe_keys(probe_n, build_n, mode, seed);
            check_backend(&MonetSeqBackend::new(), &fk, &pk, ndv_hint);
            check_backend(&MonetParBackend::with_threads(4), &fk, &pk, ndv_hint);
            check_backend(&OcelotBackend::cpu(), &fk, &pk, ndv_hint);
            check_backend(&OcelotBackend::gpu(), &fk, &pk, ndv_hint);
        }
    }

    /// Forced-spill configuration on the device contexts: a pool budget far
    /// below the partition footprint must spill and restore, and still
    /// reproduce the in-memory join exactly — including under skew.
    #[test]
    fn forced_spill_matches_in_memory_on_device_contexts() {
        let build_n = 3_000usize;
        let pk: Vec<i32> = (0..build_n as i32).collect();
        for mode in [0u8, 1] {
            let fk = probe_keys(30_000, build_n, mode, 0x5EED);
            let (exp_fk, exp_pk) = reference(&fk, &pk);
            for ctx in [OcelotContext::cpu(), OcelotContext::gpu()] {
                let fkc = ctx.upload_i32(&fk, "fk").unwrap();
                let pkc = ctx.upload_i32(&pk, "pk").unwrap();
                let cfg = PartitionedJoinConfig {
                    partition_bits: 4,
                    device_budget: Some(96 * 1024),
                    max_build_rows: usize::MAX,
                    max_passes: 1,
                };
                let join = partitioned_pkfk_join(&ctx, &fkc, &pkc, &cfg).unwrap();
                assert_eq!(join.probe_oids.read(&ctx).unwrap(), exp_fk, "mode {mode}");
                assert_eq!(join.build_oids.read(&ctx).unwrap(), exp_pk, "mode {mode}");
                assert!(join.stats.spills > 0, "mode {mode}: budget must force spills");
                assert_eq!(join.stats.unspills, join.stats.spills);
            }
        }
    }
}

#[cfg(test)]
mod observability {
    use ocelot_core::SharedDevice;
    use ocelot_engine::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_engine::{Session, TraceEventKind, TraceSink};
    use ocelot_storage::{Bat, Catalog, Table};
    use ocelot_tpch::{run_query, TpchConfig, TpchDb};
    use proptest::collection;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn catalog(keys: &[i32], values: &[f32]) -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", keys.to_vec()).into_ref())
            .with_column("b", Bat::from_f32("b", values.to_vec()).into_ref());
        catalog.add_table(table);
        catalog
    }

    proptest! {
        /// The EXPLAIN ANALYZE conservation property: for any plan and
        /// data, the per-node wall times plus the accounted overhead sum
        /// to the plan total *exactly* (epsilon = 0 by construction), the
        /// per-node flush deltas partition the queue's flush count over
        /// the run, and profiling does not perturb the results.
        #[test]
        fn explain_analyze_conserves_time_rows_and_flushes(
            raw in collection::vec(-1_000i32..1_000, 50..400),
            bounds in collection::vec((-50i32..50, 0i32..80), 1..4),
        ) {
            let keys: Vec<i32> = raw.iter().map(|v| v % 100).collect();
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.125).collect();
            let catalog = catalog(&keys, &values);
            let session = Session::ocelot(&SharedDevice::cpu());
            for (low, width) in &bounds {
                let plan = compile(&rewrite_for_ocelot(&example_plan(
                    "t", "a", "b", *low, *low + *width,
                )))
                .unwrap();
                let queue = session.backend().context().queue();
                let flushes_before = queue.flush_count();
                let (values, profile) = session.explain_analyze(&plan, &catalog).unwrap();
                let flush_delta = queue.flush_count() - flushes_before;

                // Time conservation: an exact partition, not an estimate.
                prop_assert_eq!(
                    profile.total_host_ns,
                    profile.nodes_host_ns() + profile.overhead_ns
                );
                // Every plan node has a profile record, in program order.
                prop_assert_eq!(profile.nodes.len(), plan.len());
                for (pc, node) in profile.nodes.iter().enumerate() {
                    prop_assert_eq!(node.index, pc);
                }
                // Per-node flush deltas partition the run's flush count.
                let node_flushes: u64 = profile.nodes.iter().map(|n| n.marker.flushes).sum();
                prop_assert_eq!(node_flushes, flush_delta);
                // Aggregated marker equals the per-node sum (monotone
                // counters partition across steps).
                prop_assert_eq!(profile.total_marker().flushes, node_flushes);
                // Rows roll up, and profiling leaves the answer untouched.
                let node_rows: u64 = profile.nodes.iter().map(|n| n.rows).sum();
                prop_assert_eq!(node_rows, profile.total_rows());
                let plain = session.run(&plan, &catalog).unwrap();
                prop_assert_eq!(values, plain);
            }
        }
    }

    /// The flush-trace mirror: `Queue::flush_count` and the number of
    /// recorded `Flush` trace events move in lockstep on the Q6
    /// one-flush-per-plan path, on both Ocelot devices — and the host
    /// configurations, which have no queue, record no flush events at all
    /// even with a tracer attached.
    #[test]
    fn traced_flush_events_mirror_flush_count_on_q6() {
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 11 });
        let flushes =
            |sink: &TraceSink| sink.count(|e| matches!(e.kind, TraceEventKind::Flush { .. }));

        let ms = Session::monet_seq();
        let sink = Arc::new(TraceSink::new());
        ms.attach_tracer(&sink);
        run_query(&ms, &db, 6).unwrap();
        ms.detach_tracer();
        assert_eq!(flushes(&sink), 0, "MS has no command queue to flush");

        let mp = Session::monet_par();
        let sink = Arc::new(TraceSink::new());
        mp.attach_tracer(&sink);
        run_query(&mp, &db, 6).unwrap();
        mp.detach_tracer();
        assert_eq!(flushes(&sink), 0, "MP has no command queue to flush");

        for shared in [SharedDevice::cpu(), SharedDevice::gpu()] {
            let session = Session::ocelot(&shared);
            let sink = Arc::new(TraceSink::new());
            let before = session.backend().context().queue().flush_count();
            session.attach_tracer(&sink);
            run_query(&session, &db, 6).unwrap();
            session.detach_tracer();
            let delta = session.backend().context().queue().flush_count() - before;
            assert_eq!(
                flushes(&sink) as u64,
                delta,
                "{}: traced flush events mirror the effective flush count",
                session.name()
            );
            assert_eq!(delta, 1, "{}: Q6 keeps its one-flush-per-plan bound", session.name());
        }
    }
}

#[cfg(test)]
mod analysis {
    //! PR 10 — the static-analysis suite: ill-formed plans are rejected
    //! with the expected typed diagnostics, seeded device-phase races are
    //! caught (typed, never a panic), the full ported workload passes the
    //! verifier on all four backends, and the verifier's static flush
    //! bound proves Q6's one-flush property without executing it.

    use ocelot_analyze::{verify, FlushBound, PlanDiagnostic, RaceDiagnostic};
    use ocelot_core::{OcelotContext, SharedDevice};
    use ocelot_engine::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_engine::plan::{Plan, PlanBuilder, PlanError, PlanNode, PlanOp, ValueKind};
    use ocelot_engine::Session;
    use ocelot_kernel::{Buffer, BufferAccess, Kernel, KernelAccesses, LaunchConfig, WorkGroupCtx};
    use ocelot_tpch::{
        q10_query, q12_plan, q12_queries, q14_query, q1_query, q3_plan, q3_query, q4_plan,
        q4_query, q5_query, q6_plan, q6_query, run_query, TpchConfig, TpchDb, PORTED_QUERY_IDS,
    };
    use proptest::prelude::*;
    use std::sync::Arc;

    fn bind(column: &str, out: usize) -> PlanNode {
        PlanNode {
            op: PlanOp::Bind { table: "t".into(), column: column.into() },
            inputs: vec![],
            outputs: vec![out],
        }
    }

    /// Each class of ill-formed plan is rejected with its own typed
    /// diagnostic — the verifier distinguishes a register read too early
    /// from one never defined, a redefinition, a kind clash and an arity
    /// violation.
    #[test]
    fn ill_formed_plans_each_produce_their_typed_diagnostic() {
        // Use before def (defined later) vs dangling (never defined).
        let report = verify(&Plan::from_nodes_unchecked(vec![
            PlanNode { op: PlanOp::CastI32F32, inputs: vec![1], outputs: vec![0] },
            bind("a", 1),
            PlanNode { op: PlanOp::ExtractYear, inputs: vec![9], outputs: vec![2] },
        ]));
        assert!(!report.is_ok());
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            PlanDiagnostic::UseBeforeDef { node: 0, var: 1, defined_at: 1, .. }
        )));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::UndefinedInput { node: 2, var: 9, .. })));

        // Single assignment.
        let report = verify(&Plan::from_nodes_unchecked(vec![bind("a", 0), bind("b", 0)]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::DoubleDefine { node: 1, var: 0, first: 0, .. })));

        // Kind clash: a grouping fed to an element-wise multiply.
        let report = verify(&Plan::from_nodes_unchecked(vec![
            bind("a", 0),
            PlanNode { op: PlanOp::GroupBy, inputs: vec![0], outputs: vec![1] },
            PlanNode { op: PlanOp::MulF32, inputs: vec![0, 1], outputs: vec![2] },
        ]));
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            PlanDiagnostic::InputKind { found: ValueKind::Group, expected: ValueKind::Column, .. }
        )));

        // Arity violation: a join with one operand.
        let report = verify(&Plan::from_nodes_unchecked(vec![
            bind("a", 0),
            PlanNode { op: PlanOp::PkFkJoin, inputs: vec![0], outputs: vec![1, 2] },
        ]));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::InputArity { node: 1, found: 1, .. })));
    }

    /// The builder's raw-node path enforces the definition discipline the
    /// SSA methods guarantee by construction: appending a node that
    /// redefines a live register fails with the typed
    /// [`PlanError::DuplicateDefinition`].
    #[test]
    fn raw_append_rejects_duplicate_definitions() {
        let mut builder = PlanBuilder::new();
        let a = builder.bind("t", "a");
        builder.push_node(PlanOp::CastI32F32, vec![a], vec![a + 1]).expect("fresh output register");
        let error = builder
            .push_node(PlanOp::ExtractYear, vec![a], vec![a])
            .expect_err("redefinition must be rejected");
        assert_eq!(error, PlanError::DuplicateDefinition { var: a });
        let error = builder
            .push_node(PlanOp::CastI32F32, vec![99], vec![a + 2])
            .expect_err("undefined input must be rejected");
        assert_eq!(error, PlanError::UndefinedVar { var: 99 });
        // The surviving nodes form a verifiable plan.
        let mut builder2 = PlanBuilder::new();
        let a = builder2.bind("t", "a");
        builder2.push_node(PlanOp::CastI32F32, vec![a], vec![a + 1]).unwrap();
        builder2.result(&[a + 1]).unwrap();
        assert!(verify(&builder2.finish()).is_ok());
    }

    /// Every ported TPC-H plan — DSL-lowered and the hand-built physical
    /// oracles — passes the verifier, checked through all four evaluated
    /// backend configurations; running the workload then re-checks every
    /// plan at admission (debug builds).
    #[test]
    fn ported_workload_passes_the_verifier_on_all_four_backends() {
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 7 });
        let catalog = db.catalog();
        let mut plans: Vec<(String, Plan)> = Vec::new();
        for (name, query) in [
            ("q1", q1_query(&db)),
            ("q3", q3_query(&db)),
            ("q4", q4_query(&db)),
            ("q5", q5_query(&db)),
            ("q6", q6_query(&db)),
            ("q10", q10_query(&db)),
            ("q14", q14_query(&db)),
        ] {
            plans.push((name.to_string(), query.lower(catalog).unwrap()));
        }
        let (q12_all, q12_high) = q12_queries(&db);
        plans.push(("q12_all".into(), q12_all.lower(catalog).unwrap()));
        plans.push(("q12_high".into(), q12_high.lower(catalog).unwrap()));
        for (name, plan) in [
            ("q3_oracle", q3_plan(&db).unwrap()),
            ("q4_oracle", q4_plan(&db).unwrap()),
            ("q6_oracle", q6_plan(&db).unwrap()),
            ("q12_oracle", q12_plan(&db).unwrap()),
        ] {
            plans.push((name.to_string(), plan));
        }

        let shared = SharedDevice::cpu();
        let gpu = SharedDevice::gpu();
        let ms = Session::monet_seq();
        let mp = Session::monet_par();
        let ocelot_cpu = Session::ocelot(&shared);
        let ocelot_gpu = Session::ocelot(&gpu);

        for (name, plan) in &plans {
            for report in [
                ms.verify_plan(plan),
                mp.verify_plan(plan),
                ocelot_cpu.verify_plan(plan),
                ocelot_gpu.verify_plan(plan),
            ] {
                assert!(report.is_ok(), "{name} failed verification:\n{report}");
            }
        }

        // Execute the whole ported workload on every backend: in debug
        // builds `Session::run` re-verifies each plan at admission.
        for query in PORTED_QUERY_IDS {
            run_query(&ms, &db, query).unwrap();
            run_query(&mp, &db, query).unwrap();
            run_query(&ocelot_cpu, &db, query).unwrap();
            run_query(&ocelot_gpu, &db, query).unwrap();
        }
    }

    /// The flush-boundary pass proves Q6's one-flush property statically
    /// — and execution on the unified-memory device confirms the bound is
    /// an upper bound.
    #[test]
    fn q6_one_flush_property_is_proven_statically_and_holds_at_runtime() {
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 13 });
        let lowered = q6_query(&db).lower(db.catalog()).unwrap();
        let report = verify(&lowered);
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.flush_bound, FlushBound::AtMost(1), "DSL-lowered Q6");
        let oracle = q6_plan(&db).unwrap();
        assert_eq!(verify(&oracle).flush_bound, FlushBound::AtMost(1), "hand-built Q6");

        // A plan with a join cannot claim a constant bound.
        let q3 = q3_query(&db).lower(db.catalog()).unwrap();
        assert!(
            matches!(verify(&q3).flush_bound, FlushBound::DataDependent { .. }),
            "Q3 joins are host-resolving"
        );

        // Runtime cross-check on the unified-memory device: the static
        // bound is conservative (actual <= bound).
        let session = Session::ocelot(&SharedDevice::cpu());
        let queue = session.backend().context().queue();
        let before = queue.flush_count();
        session.run(&lowered, db.catalog()).unwrap();
        let delta = queue.flush_count() - before;
        assert!(delta <= 1, "static bound 1 must dominate actual {delta}");
    }

    /// A kernel that executes nothing but declares a tier-2 write over a
    /// buffer range — the minimal seed for a device-phase race.
    struct DeclaredWriter {
        buffer: Buffer,
        from: usize,
        to: usize,
    }

    impl Kernel for DeclaredWriter {
        fn name(&self) -> &str {
            "test_declared_writer"
        }
        fn run_group(&self, _group: &mut WorkGroupCtx) {}
        fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<KernelAccesses> {
            Some(KernelAccesses::of(vec![BufferAccess::slice_write(
                &self.buffer,
                self.from..self.to,
            )]))
        }
    }

    /// Seeded violation: two event-unordered kernels declaring
    /// overlapping tier-2 writes to one buffer are reported as a typed
    /// [`RaceDiagnostic::WriteWriteOverlap`] at flush — the flush itself
    /// succeeds (diagnostics, never panics).
    #[test]
    fn seeded_overlapping_writes_are_caught_as_typed_diagnostics() {
        let ctx = OcelotContext::cpu();
        let buffer = ctx.alloc(64, "raced").unwrap();
        ctx.queue().race().arm();
        let writer =
            |from: usize, to: usize| Arc::new(DeclaredWriter { buffer: buffer.clone(), from, to });
        ctx.queue().enqueue_kernel(writer(0, 32), ctx.launch(32), &[]).unwrap();
        ctx.queue().enqueue_kernel(writer(16, 48), ctx.launch(32), &[]).unwrap();
        ctx.queue().flush().unwrap();
        let diagnostics = ctx.queue().race().take_diagnostics();
        ctx.queue().race().disarm();
        assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
        assert!(matches!(diagnostics[0], RaceDiagnostic::WriteWriteOverlap { .. }));
        // Rendered form carries the buffer label and both ranges.
        let rendered = diagnostics[0].to_string();
        assert!(rendered.contains("raced"), "{rendered}");
    }

    /// The real operator pipelines are race-free under their own access
    /// declarations: running the end-to-end select→gather→sum chain and
    /// TPC-H Q6 with the detector armed yields zero diagnostics while
    /// actually checking declared kernels (positive control via stats).
    #[test]
    fn armed_detector_stays_silent_on_real_pipelines() {
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 23 });
        let session = Session::ocelot(&SharedDevice::cpu());
        let queue = session.backend().context().queue();
        queue.race().arm();
        run_query(&session, &db, 6).unwrap();
        run_query(&session, &db, 1).unwrap();
        let stats = queue.race().stats();
        let diagnostics = queue.race().take_diagnostics();
        queue.race().disarm();
        assert!(diagnostics.is_empty(), "{diagnostics:?}");
        assert!(stats.kernels_declared > 0, "declared kernels were actually checked: {stats:?}");
        assert!(stats.bitmap_checks > 0, "bitmap padding was actually checked: {stats:?}");
    }

    proptest! {
        /// Every plan of the PR 9 observability suite's family — the
        /// rewritten MAL example pipeline over arbitrary selection bounds
        /// — passes the verifier and keeps the static one-flush bound.
        #[test]
        fn observability_suite_plans_pass_the_verifier(
            low in -50i32..50,
            width in 0i32..80,
        ) {
            let plan = compile(&rewrite_for_ocelot(&example_plan(
                "t", "a", "b", low, low + width,
            )))
            .unwrap();
            let report = verify(&plan);
            prop_assert!(report.is_ok(), "{}", report);
            prop_assert_eq!(report.flush_bound, FlushBound::AtMost(1));
        }
    }
}
