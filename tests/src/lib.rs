//! Cross-crate integration suites.
//!
//! Two headline suites:
//!
//! * **Sync-boundary regression** — the deferred device-value API
//!   (`DevScalar<T>` / typed `DevColumn<T>`) promises that a chained
//!   operator pipeline enqueues everything and flushes the command queue
//!   exactly once, at the final `.get()`/`.read()`. Pinned with
//!   [`ocelot_kernel::Queue::flush_count`] and `FlushStats` across every
//!   Ocelot device, and property-tested (deferred == eager) across all four
//!   evaluated backends.
//! * **Session/scheduler regression** (PR 3) — interleaving N sessions'
//!   plans through the multi-query scheduler yields results identical to
//!   running each plan alone; concurrently admitted TPC-H Q6 plans keep
//!   their per-plan single-flush bound; and the shared buffer pool serves
//!   one session's allocations from another session's finished
//!   intermediates (cross-context recycling hit-rate > 0).

#[cfg(test)]
mod sync_boundary {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::{gather, reduce};
    use ocelot_core::OcelotContext;

    fn test_data() -> (Vec<i32>, Vec<f32>) {
        let keys: Vec<i32> = (0..50_000).map(|i| (i * 37 + 11) % 1000).collect();
        let payload: Vec<f32> = (0..50_000).map(|i| (i % 97) as f32 * 0.5).collect();
        (keys, payload)
    }

    fn expected_sum(keys: &[i32], payload: &[f32]) -> f32 {
        keys.iter().zip(payload).filter(|(k, _)| (100..=300).contains(*k)).map(|(_, p)| *p).sum()
    }

    /// The acceptance pipeline: select → scan (inside materialise) → gather
    /// → sum, with exactly one queue flush at the final `.get()`.
    fn run_pipeline(ctx: &OcelotContext) {
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let flushes_before = ctx.queue().flush_count();
        let stats_before = ctx.queue().total_stats();

        let bitmap = select::select_range_i32(ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
        let fetched = gather::gather(ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(ctx, &fetched).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before,
            "select→scan→gather→sum must not flush on {:?}",
            ctx.device().info().kind
        );
        assert!(ctx.queue().pending_ops() > 0, "work must be enqueued, not executed");

        let value = total.get(ctx).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before + 1,
            "exactly one flush, at the final .get(), on {:?}",
            ctx.device().info().kind
        );

        let expected = expected_sum(&keys, &payload);
        assert!((value - expected).abs() / expected.abs().max(1.0) < 1e-3, "{value} vs {expected}");

        // FlushStats cross-check: the single flush executed the whole chain
        // (select, count, 3 scan phases, write positions, gather, 2 reduce
        // phases).
        let delta_kernels = ctx.queue().total_stats().kernels - stats_before.kernels;
        assert!(delta_kernels >= 7, "the chain's kernels all ran in the one flush");
    }

    #[test]
    fn pipeline_flushes_once_on_all_ocelot_devices() {
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            run_pipeline(&ctx);
        }
    }

    #[test]
    fn gpu_reads_back_one_word_not_the_intermediates() {
        // The deferred design's bandwidth win, in FlushStats terms: on the
        // discrete device the only device→host transfer of the whole
        // pipeline is the four-byte scalar readback.
        let ctx = OcelotContext::gpu();
        let (keys, payload) = test_data();
        let k = ctx.upload_i32(&keys, "keys").unwrap();
        let p = ctx.upload_f32(&payload, "payload").unwrap();
        let before = ctx.queue().total_stats();
        let bitmap = select::select_range_i32(&ctx, &k, 100, 300).unwrap();
        let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
        let fetched = gather::gather(&ctx, &p, &oids).unwrap();
        let total = reduce::sum_f32(&ctx, &fetched).unwrap();
        let _ = total.get(&ctx).unwrap();
        let delta = ctx.queue().total_stats().bytes_from_device - before.bytes_from_device;
        assert_eq!(delta, 4, "only the one-word scalar crosses back to the host");
    }
}

#[cfg(test)]
mod sessions {
    use ocelot_core::SharedDevice;
    use ocelot_engine::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_engine::plan::Plan;
    use ocelot_engine::{QueryJob, QueryValue, Scheduler, Session};
    use ocelot_storage::{Bat, Catalog, Table};
    use ocelot_tpch::{q6_plan, run_query, TpchConfig, TpchDb};
    use proptest::collection;
    use proptest::prelude::*;

    fn catalog(keys: &[i32], values: &[f32]) -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", keys.to_vec()).into_ref())
            .with_column("b", Bat::from_f32("b", values.to_vec()).into_ref());
        catalog.add_table(table);
        catalog
    }

    proptest! {
        /// N sessions' plans interleaved through the scheduler produce
        /// results identical to running every plan to completion alone —
        /// for any admission cap, on a shared device with a shared pool.
        #[test]
        fn interleaved_sessions_equal_sequential_execution(
            raw in collection::vec(-1_000i32..1_000, 50..400),
            bounds in collection::vec((-50i32..50, 0i32..80), 2..5),
        ) {
            let keys: Vec<i32> = raw.iter().map(|v| v % 100).collect();
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.125).collect();
            let catalog = catalog(&keys, &values);
            let plans: Vec<Plan> = bounds
                .iter()
                .map(|(low, width)| {
                    compile(&rewrite_for_ocelot(&example_plan(
                        "t", "a", "b", *low, *low + *width,
                    )))
                    .unwrap()
                })
                .collect();

            // Sequential reference: each plan alone, in its own session on
            // its own (fresh) shared device.
            let sequential: Vec<Vec<QueryValue>> = plans
                .iter()
                .map(|plan| {
                    Session::ocelot(&SharedDevice::cpu())
                        .run(plan, &catalog)
                        .unwrap()
                })
                .collect();

            // Interleaved: one session per plan on ONE shared device, all
            // plans admitted together (and with a partial admission cap).
            for in_flight in [2, plans.len()] {
                let shared = SharedDevice::cpu();
                let sessions: Vec<Session<_>> =
                    plans.iter().map(|_| Session::ocelot(&shared)).collect();
                let jobs: Vec<QueryJob<'_, _>> = plans
                    .iter()
                    .zip(&sessions)
                    .map(|(plan, session)| QueryJob { session, plan, catalog: &catalog })
                    .collect();
                let results = Scheduler::new().with_in_flight(in_flight).run(&jobs);
                for (index, result) in results.iter().enumerate() {
                    prop_assert_eq!(
                        result.as_ref().unwrap(),
                        &sequential[index],
                        "plan {} diverged under interleaving (in_flight={})",
                        index,
                        in_flight
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_q6_plans_share_the_pool_within_flush_bounds() {
        // The PR 3 acceptance scenario: two Q6 plans admitted concurrently
        // in two sessions of one shared device. Each plan must keep its
        // PR 2 bound (exactly one flush), produce the reference revenue,
        // and the pool must prove cross-context reuse.
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 23 });
        let plan = q6_plan(&db).unwrap();
        let reference = run_query(&Session::monet_seq(), &db, 6).unwrap();

        let shared = SharedDevice::cpu();
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        let jobs = [
            QueryJob { session: &a, plan: &plan, catalog: db.catalog() },
            QueryJob { session: &b, plan: &plan, catalog: db.catalog() },
        ];
        let results = Scheduler::new().with_in_flight(2).run(&jobs);
        for (session, result) in [&a, &b].into_iter().zip(&results) {
            let revenue = match result.as_ref().unwrap().as_slice() {
                [QueryValue::Scalar(revenue)] => *revenue as f64,
                other => panic!("unexpected q6 result {other:?}"),
            };
            let expected = reference.rows[0][0];
            assert!(
                (revenue - expected).abs() / expected.abs().max(1.0) < 1e-3,
                "{}: {revenue} vs {expected}",
                session.name()
            );
            assert_eq!(
                session.backend().context().queue().flush_count(),
                1,
                "{}: Q6 must keep its single-flush bound under concurrency",
                session.name()
            );
        }

        // Cross-context recycling: a third session on the same device runs
        // the same plan; its result buffers come from the pool the first
        // two sessions filled — hits recorded by a Memory Manager that
        // never released a buffer itself are cross-context by construction.
        let c = Session::ocelot(&shared);
        let before = shared.pool().stats();
        let third = c.run(&plan, db.catalog()).unwrap();
        assert_eq!(third, *results[0].as_ref().unwrap());
        assert_eq!(c.backend().context().queue().flush_count(), 1);
        let hits = c.backend().context().memory().stats().recycle_hits;
        assert!(hits > 0, "the third session must allocate from the shared pool");
        let delta_cross = shared.pool().stats().cross_context_hits - before.cross_context_hits;
        assert!(
            delta_cross >= hits,
            "all {hits} hits are cross-context (pool stats moved by {delta_cross})"
        );
    }
}

#[cfg(test)]
mod deferred_vs_eager {
    use ocelot_core::ops::select;
    use ocelot_core::primitives::reduce;
    use ocelot_core::OcelotContext;
    use ocelot_engine::{Backend, MonetParBackend, MonetSeqBackend, OcelotBackend};
    use proptest::collection;
    use proptest::prelude::*;

    fn ocelot_contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    fn check_backend<B: Backend>(backend: &B, values: &[f32], expected: (f32, f32, f32)) {
        let col = backend.lift_f32(values.to_vec());
        let sum = backend.sum_f32(&col);
        prop_assert!(
            (sum - expected.0).abs() / expected.0.abs().max(1.0) < 1e-3,
            "{}: {} vs {}",
            backend.name(),
            sum,
            expected.0
        );
        prop_assert_eq!(backend.min_f32(&col), expected.1, "{}", backend.name());
        prop_assert_eq!(backend.max_f32(&col), expected.2, "{}", backend.name());
        // The deferred one-element column path agrees bit-exactly with the
        // eager scalar path of the same backend.
        let deferred = backend.to_f32(&backend.sum_scalar_f32(&col));
        prop_assert_eq!(deferred[0].to_bits(), sum.to_bits(), "{}", backend.name());
    }

    proptest! {
        #[test]
        fn devscalar_integer_reductions_equal_eager_readbacks(
            values in collection::vec(-10_000i32..10_000, 1..400),
        ) {
            let sum: i32 = values.iter().fold(0i32, |a, v| a.wrapping_add(*v));
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                prop_assert_eq!(reduce::sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), sum);
                prop_assert_eq!(reduce::min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), min);
                prop_assert_eq!(reduce::max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), max);
            }
        }

        #[test]
        fn devscalar_selected_counts_equal_eager_readbacks(
            values in collection::vec(0i32..100, 0..300),
        ) {
            let expected = values.iter().filter(|v| (25..=75).contains(*v)).count() as u32;
            for ctx in ocelot_contexts() {
                let col = ctx.upload_i32(&values, "v").unwrap();
                let bitmap = select::select_range_i32(&ctx, &col, 25, 75).unwrap();
                let count = select::selected_count(&ctx, &bitmap).unwrap();
                prop_assert_eq!(count.get(&ctx).unwrap(), expected);
                // Deferred lengths resolve to the same cardinality.
                let oids = select::materialize_bitmap(&ctx, &bitmap).unwrap();
                prop_assert_eq!(oids.len(&ctx).unwrap(), expected as usize);
            }
        }

        #[test]
        fn backend_aggregates_agree_across_all_four_backends(
            raw in collection::vec(-500i32..500, 1..300),
        ) {
            let values: Vec<f32> = raw.iter().map(|v| *v as f32 * 0.25).collect();
            let reference = MonetSeqBackend::new();
            let expected = (
                reference.sum_f32(&reference.lift_f32(values.clone())),
                reference.min_f32(&reference.lift_f32(values.clone())),
                reference.max_f32(&reference.lift_f32(values.clone())),
            );
            check_backend(&MonetParBackend::new(), &values, expected);
            check_backend(&OcelotBackend::cpu(), &values, expected);
            check_backend(&OcelotBackend::cpu_sequential(), &values, expected);
            check_backend(&OcelotBackend::gpu(), &values, expected);
        }
    }
}
